// Fallback driver: turns any LLVMFuzzerTestOneInput target into a plain
// regression binary for the normal (GCC, no-libFuzzer) tier-1 build.
//
//   fuzz_<target>_regression <corpus-dir-or-file>...
//
// Replays every corpus file through the target, then replays a deterministic
// set of mutations of each file (bit flips, truncations, splices) so the
// regression run retains a little of the fuzzer's adversarial character
// without any nondeterminism — the same inputs are exercised on every run
// and under every sanitizer lane. Exits 0 unless the target crashes (which
// the harness reports via the process dying) or no corpus file was found.
//
// Under -DGADGET_FUZZ=ON this file is NOT linked; libFuzzer provides main().
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "src/common/file_util.h"
#include "src/common/rng.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

void RunOne(const std::string& bytes) {
  LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size());
}

// Deterministic adversarial variants of one corpus input. Seeded from the
// content itself so adding corpus files never reshuffles existing coverage.
void RunMutations(const std::string& bytes) {
  uint64_t seed = 0xcbf29ce484222325ULL;
  for (char c : bytes) {
    seed = (seed ^ static_cast<uint8_t>(c)) * 0x100000001b3ULL;
  }
  gadget::Pcg32 rng(seed);
  constexpr int kMutations = 24;
  for (int i = 0; i < kMutations; ++i) {
    std::string m = bytes;
    switch (rng.NextBounded(4)) {
      case 0:  // bit flip
        if (!m.empty()) {
          m[rng.NextBounded(static_cast<uint32_t>(m.size()))] ^=
              static_cast<char>(1u << rng.NextBounded(8));
        }
        break;
      case 1:  // truncate
        m.resize(m.size() - m.size() / (1 + rng.NextBounded(8)));
        break;
      case 2:  // overwrite a run with 0xff (length lies love saturated bytes)
        if (!m.empty()) {
          size_t at = rng.NextBounded(static_cast<uint32_t>(m.size()));
          size_t run = 1 + rng.NextBounded(8);
          for (size_t j = at; j < m.size() && j < at + run; ++j) {
            m[j] = static_cast<char>(0xff);
          }
        }
        break;
      default:  // splice the tail onto the head
        if (m.size() > 2) {
          size_t cut = 1 + rng.NextBounded(static_cast<uint32_t>(m.size() - 1));
          m = m.substr(cut) + m.substr(0, cut);
        }
        break;
    }
    RunOne(m);
  }
}

}  // namespace

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    std::error_code ec;
    if (fs::is_directory(argv[i], ec)) {
      for (const auto& entry : fs::directory_iterator(argv[i], ec)) {
        if (entry.is_regular_file()) {
          files.push_back(entry.path().string());
        }
      }
    } else if (fs::is_regular_file(argv[i], ec)) {
      files.emplace_back(argv[i]);
    }
  }
  // Directory iteration order is filesystem-dependent; sort for reproducible
  // replay order (matters only for debugging, not for correctness).
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    std::fprintf(stderr, "fuzz regression driver: no corpus files found\n");
    return 2;
  }
  RunOne(std::string());  // empty input is always in the implied corpus
  size_t replayed = 0;
  for (const std::string& path : files) {
    std::string bytes;
    if (!gadget::ReadFileToString(path, &bytes).ok()) {
      std::fprintf(stderr, "fuzz regression driver: cannot read %s\n", path.c_str());
      return 2;
    }
    RunOne(bytes);
    RunMutations(bytes);
    ++replayed;
  }
  std::printf("fuzz regression driver: %zu corpus file(s) replayed\n", replayed);
  return 0;
}
