// Shared plumbing for the fuzz targets (fuzz/README in DESIGN.md "Static
// analysis & fuzzing").
//
// Every target is a libFuzzer `LLVMFuzzerTestOneInput` entry point. Under
// -DGADGET_FUZZ=ON it links against libFuzzer proper; in the normal tier-1
// build the same translation unit links against fuzz_main.cc, which replays
// the checked-in corpus (plus deterministic mutations) as a plain regression
// binary — so every crasher that ever lands in fuzz/corpus/ is re-executed by
// every sanitizer lane forever.
//
// ByteSlicer is a minimal FuzzedDataProvider: it carves typed values off the
// front of the raw input so a target can consume "a mode byte, then a key,
// then the rest" without hand-rolled pointer arithmetic. Consuming past the
// end yields zeros/empties, never UB.
#ifndef GADGET_FUZZ_FUZZ_UTIL_H_
#define GADGET_FUZZ_FUZZ_UTIL_H_

#include <unistd.h>

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "src/common/file_util.h"

namespace gadget {
namespace fuzz {

class ByteSlicer {
 public:
  ByteSlicer(const uint8_t* data, size_t size)
      : p_(reinterpret_cast<const char*>(data)), remaining_(size) {}

  size_t remaining() const { return remaining_; }

  uint8_t TakeU8() {
    uint8_t v = 0;
    TakeInto(&v, sizeof(v));
    return v;
  }

  uint32_t TakeU32() {
    uint32_t v = 0;
    TakeInto(&v, sizeof(v));
    return v;
  }

  uint64_t TakeU64() {
    uint64_t v = 0;
    TakeInto(&v, sizeof(v));
    return v;
  }

  bool TakeBool() { return (TakeU8() & 1) != 0; }

  // Uniform-ish in [0, bound); bound == 0 returns 0.
  uint32_t TakeBounded(uint32_t bound) { return bound == 0 ? 0 : TakeU32() % bound; }

  // Up to `n` bytes (fewer when the input runs out). The view aliases the
  // fuzz input buffer — consume before the next Take.
  std::string_view TakeBytes(size_t n) {
    if (n > remaining_) {
      n = remaining_;
    }
    std::string_view v(p_, n);
    p_ += n;
    remaining_ -= n;
    return v;
  }

  // Everything left.
  std::string_view TakeRest() { return TakeBytes(remaining_); }

 private:
  void TakeInto(void* out, size_t n) {
    size_t have = n < remaining_ ? n : remaining_;
    std::memcpy(out, p_, have);
    p_ += have;
    remaining_ -= have;
  }

  const char* p_;
  size_t remaining_;
};

// A per-process scratch directory for targets whose decoder only has a file
// API (WAL, manifest, SSTable, traces). One directory per process keeps
// parallel fuzz jobs (-jobs=N) from clobbering each other's scratch files.
inline const std::string& ScratchDir() {
  static const std::string* dir = [] {
    std::string d = "/tmp/gadget_fuzz." + std::to_string(::getpid());
    // status intentionally ignored: scratch-dir creation failure surfaces as
    // an open error inside the target, which is itself fuzz-safe.
    (void)CreateDirIfMissing(d);
    return new std::string(d);
  }();
  return *dir;
}

// Writes `data` to `<ScratchDir()>/<name>` and returns the full path.
inline std::string WriteScratchFile(const std::string& name, std::string_view data) {
  std::string path = ScratchDir() + "/" + name;
  // status intentionally ignored: a failed write leaves a missing/short file,
  // which the decoder under test must reject cleanly anyway.
  (void)WriteStringToFile(path, data, /*sync=*/false);
  return path;
}

}  // namespace fuzz
}  // namespace gadget

#endif  // GADGET_FUZZ_FUZZ_UTIL_H_
