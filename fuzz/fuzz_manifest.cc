// Fuzz target: LSM manifest reader (src/stores/lsm/version.h).
//
// The manifest is rewritten atomically but read back after a crash, so
// LoadManifest must reject arbitrary bytes cleanly. A successful load is
// additionally round-tripped through SaveManifest to pin the two against
// each other.
#include <cstdint>

#include "fuzz/fuzz_util.h"
#include "src/stores/lsm/version.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string& dir = gadget::fuzz::ScratchDir();
  gadget::fuzz::WriteScratchFile(
      "MANIFEST", std::string_view(reinterpret_cast<const char*>(data), size));
  auto loaded = gadget::LoadManifest(dir);
  if (!loaded.ok()) {
    return 0;
  }
  if (!gadget::SaveManifest(dir, *loaded).ok()) {
    return 0;
  }
  auto again = gadget::LoadManifest(dir);
  if (!again.ok()) {
    __builtin_trap();  // SaveManifest emitted something LoadManifest rejects
  }
  return 0;
}
