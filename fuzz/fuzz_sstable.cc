// Fuzz target: SSTable reader (src/stores/lsm/sstable.h).
//
// Mode byte 0 drives SSTableReader::SearchBlock directly on the remaining
// bytes (the post-CRC entry parser, which a CRC-oblivious fuzzer would
// otherwise almost never reach); any other mode stages the bytes as a .sst
// file and exercises the full footer/index/bloom open path plus iteration
// and point lookups.
#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/fuzz_util.h"
#include "src/stores/lsm/sstable.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  gadget::fuzz::ByteSlicer slicer(data, size);
  const uint8_t mode = slicer.TakeU8();

  if (mode == 0) {
    // A short fuzz-chosen key, then the block content.
    std::string key(slicer.TakeBytes(slicer.TakeU8() % 16));
    std::string value;
    std::vector<std::string> operands;
    // status intentionally ignored: corrupt blocks must fail cleanly.
    (void)gadget::SSTableReader::SearchBlock(slicer.TakeRest(), key, &value, &operands, "fuzz");
    return 0;
  }

  std::string path = gadget::fuzz::WriteScratchFile("fuzz.sst", slicer.TakeRest());
  auto reader = gadget::SSTableReader::Open(path, /*file_number=*/1, /*pool=*/nullptr);
  if (!reader.ok()) {
    return 0;
  }
  // Full sequential scan (compaction's view of the table)...
  gadget::SSTableIterator it(*reader);
  while (it.Valid()) {
    it.Next();
  }
  // ...and a couple of point lookups through bloom + index + block search.
  for (std::string_view key : {std::string_view("k"), std::string_view("\xff\xff")}) {
    std::string value;
    std::vector<std::string> operands;
    // status intentionally ignored: corrupt tables must fail lookups cleanly.
    (void)(*reader)->Get(key, &value, &operands);
  }
  return 0;
}
