// Seed-corpus generator: writes one well-formed input per encoder into
// fuzz/corpus/<target>/, built from the real encoders so the fuzzers start
// from structurally valid bytes instead of noise.
//
//   gen_corpus <corpus-root>
//
// Run once when an encoder changes shape; the outputs are checked in. Fuzz
// crashers get added to the same directories by hand (CI uploads them as
// artifacts) and become permanent regressions via the fallback driver.
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "src/common/file_util.h"
#include "src/common/json.h"
#include "src/server/wire.h"
#include "src/stores/lsm/sstable.h"
#include "src/stores/lsm/version.h"
#include "src/stores/lsm/wal.h"
#include "src/streams/trace_io.h"

namespace gadget {
namespace {

bool Emit(const std::string& root, const std::string& target, const std::string& name,
          std::string_view bytes) {
  std::string dir = root + "/" + target;
  if (!CreateDirIfMissing(dir).ok()) {
    std::fprintf(stderr, "cannot create %s\n", dir.c_str());
    return false;
  }
  std::string path = dir + "/" + name;
  if (!WriteStringToFile(path, bytes, /*sync=*/false).ok()) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::printf("%s (%zu bytes)\n", path.c_str(), bytes.size());
  return true;
}

std::string FileBytes(const std::string& path) {
  std::string bytes;
  if (!ReadFileToString(path, &bytes).ok()) {
    std::fprintf(stderr, "cannot read back %s\n", path.c_str());
  }
  return bytes;
}

bool GenWire(const std::string& root) {
  std::string pipelined;
  wire::AppendPutRequest(&pipelined, 1, "key-a", "value-a");
  wire::AppendGetRequest(&pipelined, 2, "key-a");
  wire::AppendMergeRequest(&pipelined, 3, "key-b", "+1");
  wire::AppendDeleteRequest(&pipelined, 4, "key-a");
  wire::AppendMultiGetRequest(&pipelined, 5, {"key-a", "key-b", "key-c"});
  WriteBatch batch;
  batch.Put("bk1", "bv1");
  batch.Merge("bk2", "+2");
  batch.Delete("bk3");
  wire::AppendWriteBatchRequest(&pipelined, 6, batch);
  wire::AppendStatsRequest(&pipelined, 7);
  wire::AppendPingRequest(&pipelined, 8);

  std::string responses;
  wire::AppendOkResponse(&responses, 1);
  wire::AppendValueResponse(&responses, 2, "value-a");
  wire::AppendNotFoundResponse(&responses, 3);
  wire::AppendMultiResponse(&responses, 4, {Status::Ok(), Status::NotFound()}, {"v", ""});
  wire::AppendErrorResponse(&responses, 5, "shard overloaded");
  wire::AppendStatsTextResponse(&responses, 6, "{\"shards\":[]}");
  wire::AppendPongResponse(&responses, 7);

  return Emit(root, "wire", "requests_pipelined", pipelined) &&
         Emit(root, "wire", "responses", responses);
}

bool GenJson(const std::string& root) {
  JsonValue report = JsonValue::MakeObject();
  report.Set("schema", "gadget.report/1");
  report.Set("ops", uint64_t{123456});
  report.Set("ratio", 0.25);
  report.Set("ok", true);
  report.Set("note", std::string("esc \"quotes\" and \\ slashes \u00e9"));
  JsonValue arr = JsonValue::MakeArray();
  for (int i = 0; i < 3; ++i) {
    JsonValue inner = JsonValue::MakeObject();
    inner.Set("i", i);
    arr.Append(std::move(inner));
  }
  report.Set("timeline", std::move(arr));
  return Emit(root, "json", "report", report.Write(2)) &&
         Emit(root, "json", "nested", "[[[[{\"a\":[null,false,1e9,\"\\u0041\"]}]]]]");
}

bool GenWal(const std::string& root) {
  ScopedTempDir tmp("gadget_corpus");
  const std::string path = tmp.path() + "/seed.wal";
  auto writer = WalWriter::Create(path);
  if (!writer.ok()) {
    return false;
  }
  if (!(*writer)->Append(RecType::kValue, "key-a", "value-a", /*sync=*/false).ok() ||
      !(*writer)->Append(RecType::kMergeStack, "key-b", "+1", /*sync=*/false).ok() ||
      !(*writer)->Append(RecType::kTombstone, "key-a", "", /*sync=*/false).ok()) {
    return false;
  }
  WriteBatch batch;
  batch.Put("bk1", "bv1");
  batch.Delete("bk2");
  if (!(*writer)->AppendBatch(batch, /*sync=*/false).ok() || !(*writer)->Close().ok()) {
    return false;
  }
  return Emit(root, "wal", "mixed_records", FileBytes(path));
}

bool GenManifest(const std::string& root) {
  ScopedTempDir tmp("gadget_corpus");
  ManifestData data;
  data.next_file_number = 42;
  data.wal_numbers = {40, 41};
  data.files.push_back({/*level=*/0, /*number=*/7, /*size=*/4096, /*entries=*/100,
                        /*tombstones=*/3, /*created_ms=*/1234, "aaa", "zzz"});
  data.files.push_back({/*level=*/1, /*number=*/9, /*size=*/8192, /*entries=*/500,
                        /*tombstones=*/0, /*created_ms=*/5678, std::string("\x00\x01", 2),
                        std::string("\xff\xfe", 2)});
  if (!SaveManifest(tmp.path(), data).ok()) {
    return false;
  }
  return Emit(root, "manifest", "two_levels", FileBytes(tmp.path() + "/MANIFEST"));
}

bool GenSSTable(const std::string& root) {
  ScopedTempDir tmp("gadget_corpus");
  const std::string path = tmp.path() + "/seed.sst";
  SSTableBuilder builder(path, /*block_size=*/64, /*bloom_bits_per_key=*/10);
  for (int i = 0; i < 20; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "key-%03d", i);
    RecType type = i % 7 == 3 ? RecType::kTombstone : RecType::kValue;
    if (!builder.Add(key, type, "value-" + std::to_string(i)).ok()) {
      return false;
    }
  }
  if (!builder.Finish().ok()) {
    return false;
  }
  // Mode byte 1 = whole-file path (fuzz_sstable.cc).
  std::string seeded = "\x01" + FileBytes(path);
  // Mode byte 0 = direct SearchBlock: key length 2, key "k1", then a tiny
  // hand-assembled block (varint klen | key | type | varint vlen | value).
  std::string block;
  block.push_back(2);  // klen
  block += "k1";
  block.push_back(1);  // RecType::kValue
  block.push_back(2);  // vlen
  block += "v1";
  std::string direct;
  direct.push_back('\x00');
  direct.push_back(2);  // fuzz key length selector
  direct += "k1";
  direct += block;
  return Emit(root, "sstable", "small_table", seeded) &&
         Emit(root, "sstable", "search_block", direct);
}

bool GenTrace(const std::string& root) {
  ScopedTempDir tmp("gadget_corpus");
  const std::string epath = tmp.path() + "/seed.events";
  auto ew = EventTraceWriter::Create(epath);
  if (!ew.ok()) {
    return false;
  }
  for (int i = 0; i < 10; ++i) {
    Event e;
    e.stream_id = static_cast<uint8_t>(i & 1);
    e.event_time_ms = 1000 + static_cast<uint64_t>(i) * 10;
    e.key = static_cast<uint64_t>(i) * 7;
    e.value_size = 64;
    e.attr = 2;
    if (!(*ew)->Append(e).ok()) {
      return false;
    }
  }
  if (!(*ew)->Append(Event::Watermark(1100)).ok() || !(*ew)->Finish().ok()) {
    return false;
  }

  const std::string apath = tmp.path() + "/seed.access";
  auto aw = AccessTraceWriter::Create(apath);
  if (!aw.ok()) {
    return false;
  }
  for (int i = 0; i < 10; ++i) {
    StateAccess a;
    a.op = i % 3 == 0 ? OpType::kGet : OpType::kPut;
    a.key = {static_cast<uint64_t>(i), static_cast<uint64_t>(i) * 3};
    a.value_size = a.op == OpType::kGet ? 0 : 128;
    a.timestamp = 2000 + static_cast<uint64_t>(i);
    if (!(*aw)->Append(a).ok()) {
      return false;
    }
  }
  if (!(*aw)->Finish().ok()) {
    return false;
  }
  // Mode byte 1 = event trace, 0 = access trace (fuzz_trace.cc TakeBool).
  return Emit(root, "trace", "events", "\x01" + FileBytes(epath)) &&
         Emit(root, "trace", "access", std::string(1, '\x00') + FileBytes(apath));
}

}  // namespace
}  // namespace gadget

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <corpus-root>\n", argv[0]);
    return 2;
  }
  const std::string root = argv[1];
  if (!gadget::CreateDirIfMissing(root).ok()) {
    std::fprintf(stderr, "cannot create %s\n", root.c_str());
    return 1;
  }
  bool ok = gadget::GenWire(root) && gadget::GenJson(root) && gadget::GenWal(root) &&
            gadget::GenManifest(root) && gadget::GenSSTable(root) && gadget::GenTrace(root);
  return ok ? 0 : 1;
}
