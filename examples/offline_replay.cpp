// Offline mode (§5): generate a state access stream once, persist it to a
// trace file, then replay it on demand — here twice, at full speed and
// paced by a service rate — against the Lethe-configured LSM engine.
#include <cstdio>

#include "src/common/file_util.h"
#include "src/gadget/evaluator.h"
#include "src/gadget/event_generator.h"
#include "src/gadget/workload.h"
#include "src/streams/trace_io.h"

using namespace gadget;

int main() {
  ScopedTempDir dir;
  const std::string trace_path = dir.path() + "/session.trace";

  // Generate + persist (offline mode).
  EventGeneratorOptions gen;
  gen.num_events = 40'000;
  gen.num_keys = 500;
  gen.key_distribution = "hotspot";
  gen.out_of_order_fraction = 0.02;  // Fig. 8's example: 2% late events
  gen.max_lateness_ms = 3'000;
  auto source = MakeEventGenerator(gen);
  if (!source.ok()) {
    return 1;
  }
  OperatorConfig config;
  config.session_gap_ms = 10'000;
  config.allowed_lateness_ms = 3'000;
  Status s = GenerateWorkloadToFile("session_incr", **source, config, trace_path);
  if (!s.ok()) {
    std::fprintf(stderr, "generate: %s\n", s.ToString().c_str());
    return 1;
  }

  // Reload the trace (any Gadget- or YCSB-shaped trace file works here).
  auto trace = ReadAccessTrace(trace_path);
  if (!trace.ok()) {
    std::fprintf(stderr, "read: %s\n", trace.status().ToString().c_str());
    return 1;
  }
  std::printf("persisted and reloaded %zu accesses from %s\n", trace->size(),
              trace_path.c_str());

  for (double rate : {0.0, 50'000.0}) {
    auto store = OpenStore({.engine = "lethe", .dir = dir.path() + "/db-" + std::to_string(rate)});
    if (!store.ok()) {
      return 1;
    }
    ReplayOptions ropts;
    ropts.service_rate_ops_per_sec = rate;
    ropts.max_ops = 50'000;
    auto result = ReplayTrace(*trace, store->get(), ropts);
    if (!result.ok()) {
      std::fprintf(stderr, "replay: %s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("replay %-12s %s\n",
                rate == 0 ? "(unpaced):" : "(50k op/s):", result->Summary().c_str());
    if (!(*store)->Close().ok()) {
      return 1;
    }
  }
  return 0;
}
