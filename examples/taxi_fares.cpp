// Location-based-service scenario (§2.2): "the total amount of taxi fare
// events for a shared taxi ride before the drop-off timestamp" — a
// continuous join over the Taxi trip + fare streams — plus a locality
// analysis of the resulting state access trace.
#include <cstdio>

#include "src/analysis/metrics.h"
#include "src/flinklet/runtime.h"
#include "src/streams/dataset.h"

using namespace gadget;

int main() {
  TaxiOptions topts;
  topts.max_events = 80'000;
  topts.fares_per_trip = 0.8;
  auto taxi = MakeTaxiGenerator(topts);

  PipelineOptions popts;
  auto result = RunPipeline("join_cont", *taxi, popts);
  if (!result.ok()) {
    std::fprintf(stderr, "pipeline: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("processed %llu trip/fare events -> %zu rides closed with fares\n",
              (unsigned long long)result->events_processed, result->outputs.size());
  uint64_t fare_bytes = 0;
  for (const OperatorOutput& out : result->outputs) {
    fare_bytes += out.count;
  }
  std::printf("accumulated %llu fare bytes across closed rides\n",
              (unsigned long long)fare_bytes);

  // Characterize the state access workload this query produces (§3.2).
  OpComposition c = ComputeComposition(result->trace);
  std::printf("\nworkload composition: get=%.3f put=%.3f merge=%.3f delete=%.3f (%llu ops)\n",
              c.get, c.put, c.merge, c.del, (unsigned long long)c.total);

  auto stack = ComputeStackDistances(result->trace);
  auto shuffled = ComputeStackDistances(ShuffleTrace(result->trace, 7));
  std::printf("temporal locality: mean stack distance %.1f (vs %.1f shuffled)\n", stack.Mean(),
              shuffled.Mean());

  auto seqs = CountUniqueSequences(result->trace, 6);
  auto seqs_sh = CountUniqueSequences(ShuffleTrace(result->trace, 7), 6);
  std::printf("spatial locality: %llu unique 6-sequences (vs %llu shuffled)\n",
              (unsigned long long)seqs[5], (unsigned long long)seqs_sh[5]);

  auto ttls = ComputeKeyTtls(result->trace);
  std::printf("ephemerality: key TTL p50=%llu p99=%llu timesteps\n",
              (unsigned long long)PercentileOf(ttls, 50),
              (unsigned long long)PercentileOf(ttls, 99));
  std::printf("\n(short TTLs + high locality: exactly what YCSB cannot mimic, §4)\n");
  return 0;
}
