// Quickstart: generate a streaming state-access workload with Gadget and
// evaluate a KV store with it — the paper's core loop in ~40 lines.
//
//   ./quickstart [operator] [engine]
//   e.g. ./quickstart tumbling_incr lsm
#include <cstdio>
#include <string>

#include "src/common/file_util.h"
#include "src/gadget/evaluator.h"
#include "src/gadget/event_generator.h"
#include "src/gadget/workload.h"

using namespace gadget;

int main(int argc, char** argv) {
  const std::string op = argc > 1 ? argv[1] : "tumbling_incr";
  const std::string engine = argc > 2 ? argv[2] : "lsm";

  // 1. Configure the event generator (§5.1): zipfian keys arriving as a
  //    Poisson process, one watermark per 100 events.
  EventGeneratorOptions gen;
  gen.num_events = 50'000;
  gen.num_keys = 1'000;
  gen.key_distribution = "zipfian";
  gen.arrival_process = "poisson";
  gen.rate_per_sec = 1'000;
  gen.value_size = 64;
  gen.num_streams = op.rfind("join", 0) == 0 ? 2 : 1;
  auto source = MakeEventGenerator(gen);
  if (!source.ok()) {
    std::fprintf(stderr, "event generator: %s\n", source.status().ToString().c_str());
    return 1;
  }

  // 2. Simulate the operator's state machines to produce the state access
  //    stream (§5.2-5.3). 5s windows / 1s slide / 2min session gap defaults.
  OperatorConfig config;
  auto workload = GenerateWorkload(op, **source, config);
  if (!workload.ok()) {
    std::fprintf(stderr, "workload: %s\n", workload.status().ToString().c_str());
    return 1;
  }
  std::printf("operator %-14s -> %zu state accesses from %llu events\n", op.c_str(),
              workload->trace.size(),
              static_cast<unsigned long long>(workload->events_processed));

  // 3. Replay against the chosen store and report performance (§5.5).
  ScopedTempDir dir;
  auto store = OpenStore({.engine = engine, .dir = dir.path() + "/db"});
  if (!store.ok()) {
    std::fprintf(stderr, "store: %s\n", store.status().ToString().c_str());
    return 1;
  }
  auto result = ReplayTrace(workload->trace, store->get());
  if (!result.ok()) {
    std::fprintf(stderr, "replay: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("%s: %s\n", engine.c_str(), result->Summary().c_str());
  StoreStats stats = (*store)->stats();
  std::printf("store counters: gets=%llu puts=%llu merges=%llu deletes=%llu rmws=%llu\n",
              (unsigned long long)stats.gets, (unsigned long long)stats.puts,
              (unsigned long long)stats.merges, (unsigned long long)stats.deletes,
              (unsigned long long)stats.rmws);
  return (*store)->Close().ok() ? 0 : 1;
}
