// Extending Gadget with a user-defined operator (§5.4).
//
// Implements a "distinct-count within TTL" operator in the three-method
// state-machine API (AssignStateMachines / Run / Terminate): every event
// probes a dedup entry for its key; unseen keys are inserted with a TTL and
// expire via the vIndex. Roughly the state profile of a streaming
// deduplication / fraud-screening stage.
#include <cstdio>

#include "src/analysis/metrics.h"
#include "src/gadget/event_generator.h"
#include "src/gadget/workload.h"

using namespace gadget;

namespace {

class DedupLogic : public OperatorLogic {
 public:
  explicit DedupLogic(uint64_t ttl_ms) : ttl_ms_(ttl_ms) {}

  const char* name() const override { return "dedup"; }

  std::vector<StateKey> AssignStateMachines(const Event& e, Driver& driver) override {
    StateKey key{e.key, 0};
    StateMachine* existing = driver.FindMachine(key);
    if (existing == nullptr) {
      StateMachine& m = driver.GetOrCreateMachine(key, e.event_time_ms);
      m.state = 0;  // fresh: Run will insert
      driver.RegisterExpiry(e.event_time_ms + ttl_ms_, key);
    }
    return {key};
  }

  void Run(StateMachine& m, const Event& e, Driver& driver, OpEmitter& out) override {
    // Probe first (is this key a duplicate?).
    out.Emit(OpType::kGet, m.key, 0, e.event_time_ms);
    if (m.state == 0) {
      // First sighting within the TTL: remember it.
      out.Emit(OpType::kPut, m.key, 16, e.event_time_ms);
      m.state = 1;
    }
    ++m.elements;
  }

  void Terminate(StateMachine& m, uint64_t fire_time, Driver& driver, OpEmitter& out) override {
    out.Emit(OpType::kDelete, m.key, 0, driver.watermark());
    driver.DropMachine(m.key);
  }

 private:
  uint64_t ttl_ms_;
};

}  // namespace

int main() {
  EventGeneratorOptions gen;
  gen.num_events = 50'000;
  gen.num_keys = 2'000;
  gen.key_distribution = "zipfian";
  gen.rate_per_sec = 1'000;
  auto source = MakeEventGenerator(gen);
  if (!source.ok()) {
    return 1;
  }

  auto workload =
      GenerateWorkload(std::make_unique<DedupLogic>(/*ttl_ms=*/30'000), **source, OperatorConfig{});
  if (!workload.ok()) {
    std::fprintf(stderr, "%s\n", workload.status().ToString().c_str());
    return 1;
  }
  OpComposition c = ComputeComposition(workload->trace);
  std::printf("custom dedup operator: %zu accesses from %llu events\n", workload->trace.size(),
              (unsigned long long)workload->events_processed);
  std::printf("composition: get=%.3f put=%.3f delete=%.3f\n", c.get, c.put, c.del);
  auto ttls = ComputeKeyTtls(workload->trace);
  std::printf("dedup-entry TTL p50=%llu p99=%llu timesteps\n",
              (unsigned long long)PercentileOf(ttls, 50),
              (unsigned long long)PercentileOf(ttls, 99));
  std::printf("\n(three methods — assign/run/terminate — were all it took, §5.4)\n");
  return 0;
}
