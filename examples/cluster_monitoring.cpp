// Cluster-monitoring scenario (the paper's running example, §2.2): "compute
// the number of jobs submitted to the cluster every 5 seconds" — a tumbling
// window over the Borg-like stream — evaluated on all four KV stores.
//
// Demonstrates: dataset replay as a Gadget input, the flinklet reference
// pipeline computing *real* window results, and a store bake-off on the
// generated workload.
#include <cstdio>

#include "src/common/file_util.h"
#include "src/flinklet/runtime.h"
#include "src/gadget/evaluator.h"
#include "src/gadget/event_generator.h"
#include "src/gadget/workload.h"

using namespace gadget;

int main() {
  constexpr uint64_t kEvents = 60'000;

  // Real computation first: run the reference pipeline so we can show actual
  // window results next to the benchmark numbers.
  auto dataset = MakeDataset("borg", kEvents, /*seed=*/1);
  if (!dataset.ok()) {
    return 1;
  }
  PipelineOptions popts;
  auto pipeline = RunPipeline("tumbling_incr", **dataset, popts);
  if (!pipeline.ok()) {
    std::fprintf(stderr, "pipeline: %s\n", pipeline.status().ToString().c_str());
    return 1;
  }
  std::printf("flinklet computed %zu window firings; first three:\n",
              pipeline->outputs.size());
  for (size_t i = 0; i < pipeline->outputs.size() && i < 3; ++i) {
    const OperatorOutput& out = pipeline->outputs[i];
    std::printf("  job %llu, window ending %llums: %llu events\n",
                (unsigned long long)out.key, (unsigned long long)out.time,
                (unsigned long long)out.count);
  }

  // Gadget side: simulate the same operator over the same stream and drive
  // every engine with the resulting workload.
  auto dataset2 = MakeDataset("borg", kEvents, /*seed=*/1);
  if (!dataset2.ok()) {
    return 1;
  }
  auto source = MakeReplaySource(std::move(*dataset2), popts.watermark_every);
  auto workload = GenerateWorkload("tumbling_incr", *source, popts.operator_config);
  if (!workload.ok()) {
    return 1;
  }
  std::printf("\ngadget generated %zu state accesses; store bake-off:\n",
              workload->trace.size());
  for (const char* engine : {"lsm", "lethe", "btree", "faster"}) {
    ScopedTempDir dir;
    auto store = OpenStore({.engine = engine, .dir = dir.path() + "/db"});
    if (!store.ok()) {
      return 1;
    }
    auto result = ReplayTrace(workload->trace, store->get());
    if (!result.ok()) {
      std::fprintf(stderr, "%s: %s\n", engine, result.status().ToString().c_str());
      return 1;
    }
    std::printf("  %-7s %s\n", engine, result->Summary().c_str());
    if (!(*store)->Close().ok()) {
      return 1;
    }
  }
  std::printf(
      "\n(incremental windows favor in-place-update engines — the Fig. 13 "
      "effect)\n");
  return 0;
}
