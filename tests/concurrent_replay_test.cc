// Concurrent replay coverage: multi-instance replay against the striped
// MemStore and the LSM store (per-instance accounting, namespace
// disjointness, per-instance status reporting), the hash-sharded
// single-trace mode's sequential-equivalence guarantee, and the evaluator's
// latency-sampling semantics.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/common/file_util.h"
#include "src/gadget/multi.h"
#include "src/stores/kvstore.h"
#include "src/stores/memstore.h"

namespace gadget {
namespace {

// Deterministic mixed trace: puts and gets over `num_keys` keys, merge
// operands whose order is observable in the final value.
std::vector<StateAccess> MixedTrace(uint64_t ops, uint64_t num_keys) {
  std::vector<StateAccess> trace;
  trace.reserve(ops);
  for (uint64_t i = 0; i < ops; ++i) {
    OpType op = (i % 5 == 4) ? OpType::kMerge : ((i % 2) ? OpType::kGet : OpType::kPut);
    trace.push_back(StateAccess{op, StateKey{i % num_keys, i % 3}, 32, i});
  }
  return trace;
}

class EightInstancesTest : public ::testing::TestWithParam<const char*> {};

TEST_P(EightInstancesTest, PerInstanceCountsAndDisjointNamespaces) {
  const char* engine = GetParam();
  constexpr int kInstances = 8;
  constexpr uint64_t kStride = 1'000'000;

  std::vector<std::vector<StateAccess>> traces;
  for (int i = 0; i < kInstances; ++i) {
    traces.push_back(MixedTrace(2'000 + 100 * static_cast<uint64_t>(i), 64));
  }
  ScopedTempDir dir;
  StoreOptions sopts;
  sopts.engine = engine;
  sopts.dir = dir.path() + "/db";
  auto store = OpenStore(sopts);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  auto result = ReplayConcurrently(traces, store->get(), {}, kStride);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result->all_ok()) << result->FirstError().ToString();
  ASSERT_EQ(result->per_instance.size(), static_cast<size_t>(kInstances));
  ASSERT_EQ(result->statuses.size(), static_cast<size_t>(kInstances));

  uint64_t total = 0;
  double max_single = 0;
  for (int i = 0; i < kInstances; ++i) {
    EXPECT_EQ(result->per_instance[static_cast<size_t>(i)].ops,
              traces[static_cast<size_t>(i)].size())
        << "instance " << i;
    total += result->per_instance[static_cast<size_t>(i)].ops;
    max_single =
        std::max(max_single, result->per_instance[static_cast<size_t>(i)].throughput_ops_per_sec);
  }
  EXPECT_EQ(result->total_ops, total);
  EXPECT_GT(result->combined_throughput_ops_per_sec, max_single);

  // Namespace disjointness: every instance's keys live at hi + i * stride,
  // and nothing leaked into the gaps between namespaces.
  std::string value;
  for (int i = 0; i < kInstances; ++i) {
    StateKey probe{0 + static_cast<uint64_t>(i) * kStride, 0};
    EXPECT_TRUE((*store)->Get(EncodeStateKey(probe), &value).ok())
        << engine << " instance " << i;
    StateKey gap{500'000 + static_cast<uint64_t>(i) * kStride, 0};
    EXPECT_TRUE((*store)->Get(EncodeStateKey(gap), &value).IsNotFound());
  }

  // The merged view accounts for every op without re-recording samples.
  ReplayResult merged = result->Merged();
  EXPECT_EQ(merged.ops, total);
  EXPECT_EQ(merged.latency_ns.count(), total);
  ASSERT_TRUE((*store)->Close().ok());
}

INSTANTIATE_TEST_SUITE_P(Engines, EightInstancesTest, ::testing::Values("mem", "lsm"),
                         [](const auto& spec) { return std::string(spec.param); });

// A store whose writes fail: used to verify per-instance status reporting.
class FailingWriteStore : public MemStore {
 public:
  Status Put(std::string_view, std::string_view) override {
    return Status::IoError("injected put failure");
  }
};

TEST(ConcurrentStatusTest, ReportsEveryInstanceStatus) {
  FailingWriteStore store;
  std::vector<StateAccess> reads(100, StateAccess{OpType::kGet, StateKey{1, 0}, 0, 0});
  std::vector<StateAccess> writes(100, StateAccess{OpType::kPut, StateKey{2, 0}, 8, 0});
  std::vector<std::vector<StateAccess>> traces = {reads, writes, reads};
  auto result = ReplayConcurrently(traces, &store, {}, /*stride=*/0);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->all_ok());
  ASSERT_EQ(result->statuses.size(), 3u);
  EXPECT_TRUE(result->statuses[0].ok());
  EXPECT_FALSE(result->statuses[1].ok());
  EXPECT_TRUE(result->statuses[2].ok());
  EXPECT_EQ(result->FirstError().ToString(), result->statuses[1].ToString());
  // The failing instance must not mask the successful instances' results.
  EXPECT_EQ(result->per_instance[0].ops, 100u);
  EXPECT_EQ(result->per_instance[2].ops, 100u);
  EXPECT_EQ(result->total_ops, 200u);
}

TEST(ConcurrentStatusTest, NullStoreIsAnError) {
  std::vector<std::vector<StateAccess>> traces(1);
  traces[0].push_back(StateAccess{OpType::kGet, StateKey{1, 0}, 0, 0});
  auto result = ReplayConcurrently(traces, nullptr);
  EXPECT_FALSE(result.ok());
}

// Sharded replay must produce exactly the state a sequential replay
// produces: hash partitioning keeps each key's accesses ordered on one
// thread (the single-writer-per-key invariant).
TEST(ReplayShardedTest, MatchesSequentialFinalState) {
  const std::vector<StateAccess> trace = MixedTrace(20'000, 128);

  MemStore sequential_store;
  auto sequential = ReplayTrace(trace, &sequential_store);
  ASSERT_TRUE(sequential.ok());

  for (unsigned threads : {1u, 3u, 8u}) {
    MemStore store;
    auto result = ReplaySharded(trace, &store, threads);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_TRUE(result->all_ok()) << result->FirstError().ToString();
    ASSERT_EQ(result->per_instance.size(), threads);
    EXPECT_EQ(result->total_ops, trace.size());

    std::map<StateKey, bool> keys;
    for (const StateAccess& a : trace) {
      keys[a.key] = true;
    }
    for (const auto& [key, unused] : keys) {
      std::string expected, actual;
      Status es = sequential_store.Get(EncodeStateKey(key), &expected);
      Status as = store.Get(EncodeStateKey(key), &actual);
      ASSERT_EQ(es.ok(), as.ok()) << threads << " threads";
      if (es.ok()) {
        EXPECT_EQ(actual, expected) << threads << " threads";
      }
    }
  }
}

TEST(ReplayShardedTest, MaxOpsBoundsTotalAcrossShards) {
  const std::vector<StateAccess> trace = MixedTrace(10'000, 64);
  MemStore store;
  ReplayOptions opts;
  opts.max_ops = 1'000;
  auto result = ReplaySharded(trace, &store, 4, opts);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->all_ok());
  EXPECT_EQ(result->total_ops, 1'000u);
}

// latency_sample_every = 1 must reproduce the unsampled path exactly: every
// op gets a histogram sample, split across read/write histograms as before.
TEST(LatencySamplingTest, EveryOneMatchesUnsampledPath) {
  const std::vector<StateAccess> trace = MixedTrace(5'000, 64);
  uint64_t reads = 0;
  for (const StateAccess& a : trace) {
    if (a.op == OpType::kGet) {
      ++reads;
    }
  }

  MemStore default_store;
  auto unsampled = ReplayTrace(trace, &default_store);  // default options
  ASSERT_TRUE(unsampled.ok());

  MemStore explicit_store;
  ReplayOptions opts;
  opts.latency_sample_every = 1;
  auto sampled = ReplayTrace(trace, &explicit_store, opts);
  ASSERT_TRUE(sampled.ok());

  for (const ReplayResult* r : {&*unsampled, &*sampled}) {
    EXPECT_EQ(r->ops, trace.size());
    EXPECT_EQ(r->latency_ns.count(), trace.size());
    EXPECT_EQ(r->read_latency_ns.count(), reads);
    EXPECT_EQ(r->write_latency_ns.count(), trace.size() - reads);
    EXPECT_GT(r->latency_ns.max(), 0u);
  }
}

TEST(LatencySamplingTest, SampledModeCountsAllOpsButFewerSamples) {
  const std::vector<StateAccess> trace = MixedTrace(5'000, 64);
  MemStore store;
  ReplayOptions opts;
  opts.latency_sample_every = 16;
  auto result = ReplayTrace(trace, &store, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ops, trace.size());
  // ceil(5000 / 16) sampled ops (i = 0, 16, 32, ...).
  EXPECT_EQ(result->latency_ns.count(), (trace.size() + 15) / 16);
  EXPECT_GT(result->throughput_ops_per_sec, 0);
}

// The on-the-fly key offset must behave exactly like shifting the trace.
TEST(KeyOffsetTest, OffsetEqualsShiftedTrace) {
  std::vector<StateAccess> trace;
  for (uint64_t i = 0; i < 500; ++i) {
    trace.push_back(StateAccess{OpType::kPut, StateKey{i, 7}, 16, i});
  }
  MemStore shifted_store;
  std::vector<StateAccess> shifted = trace;
  for (StateAccess& a : shifted) {
    a.key.hi += 42;
  }
  ASSERT_TRUE(ReplayTrace(shifted, &shifted_store).ok());

  MemStore offset_store;
  ReplayOptions opts;
  opts.key_hi_offset = 42;
  ASSERT_TRUE(ReplayTrace(trace, &offset_store, opts).ok());

  for (uint64_t i = 0; i < 500; ++i) {
    std::string a, b;
    ASSERT_TRUE(shifted_store.Get(EncodeStateKey(StateKey{i + 42, 7}), &a).ok());
    ASSERT_TRUE(offset_store.Get(EncodeStateKey(StateKey{i + 42, 7}), &b).ok());
    EXPECT_EQ(a, b);
  }
}

}  // namespace
}  // namespace gadget
