// Engine-level tests shared across all four KV stores plus engine-specific
// behaviour (LSM compaction & reopen, FASTER regions, B+tree invariants) and
// randomized differential tests against the in-memory reference store.
#include <gtest/gtest.h>

#include <map>
#include <thread>

#include "src/common/file_util.h"
#include "src/common/rng.h"
#include "src/stores/btree/btree_store.h"
#include "src/stores/faster/faster_store.h"
#include "src/stores/kvstore.h"
#include "src/stores/lsm/lsm_store.h"
#include "src/stores/memstore.h"

namespace gadget {
namespace {

// -------------------------------------------------- cross-engine contract

class StoreContractTest : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<ScopedTempDir>();
    StoreOptions opts;
    opts.engine = GetParam();
    opts.dir = dir_->path() + "/db";
    auto store = OpenStore(opts);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    store_ = std::move(*store);
  }

  void TearDown() override {
    if (store_ != nullptr) {
      EXPECT_TRUE(store_->Close().ok());
    }
  }

  std::unique_ptr<ScopedTempDir> dir_;
  std::unique_ptr<KVStore> store_;
};

TEST_P(StoreContractTest, PutGetDelete) {
  ASSERT_TRUE(store_->Put("k", "v").ok());
  std::string value;
  ASSERT_TRUE(store_->Get("k", &value).ok());
  EXPECT_EQ(value, "v");
  ASSERT_TRUE(store_->Delete("k").ok());
  EXPECT_TRUE(store_->Get("k", &value).IsNotFound());
}

TEST_P(StoreContractTest, GetMissingIsNotFound) {
  std::string value;
  EXPECT_TRUE(store_->Get("nope", &value).IsNotFound());
}

TEST_P(StoreContractTest, OverwriteReplacesValue) {
  ASSERT_TRUE(store_->Put("k", "old").ok());
  ASSERT_TRUE(store_->Put("k", "new and longer").ok());
  std::string value;
  ASSERT_TRUE(store_->Get("k", &value).ok());
  EXPECT_EQ(value, "new and longer");
}

TEST_P(StoreContractTest, DeleteMissingKeyIsHarmless) {
  EXPECT_TRUE(store_->Delete("ghost").ok());
}

TEST_P(StoreContractTest, ReadModifyWriteAppends) {
  ASSERT_TRUE(store_->ReadModifyWrite("k", "a").ok());
  ASSERT_TRUE(store_->ReadModifyWrite("k", "b").ok());
  ASSERT_TRUE(store_->ReadModifyWrite("k", "c").ok());
  std::string value;
  ASSERT_TRUE(store_->Get("k", &value).ok());
  EXPECT_EQ(value, "abc");
}

TEST_P(StoreContractTest, MergeOrRmwEquivalence) {
  // Merge where supported, RMW otherwise — same observable semantics (§5.5).
  auto update = [&](std::string_view key, std::string_view op) {
    if (store_->supports_merge()) {
      return store_->Merge(key, op);
    }
    return store_->ReadModifyWrite(key, op);
  };
  ASSERT_TRUE(store_->Put("k", "base|").ok());
  ASSERT_TRUE(update("k", "m1|").ok());
  ASSERT_TRUE(update("k", "m2").ok());
  std::string value;
  ASSERT_TRUE(store_->Get("k", &value).ok());
  EXPECT_EQ(value, "base|m1|m2");
}

TEST_P(StoreContractTest, ManyKeysSurviveFlush) {
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(store_->Put("key" + std::to_string(i), "value" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(store_->Flush().ok());
  std::string value;
  for (int i = 0; i < n; i += 13) {
    ASSERT_TRUE(store_->Get("key" + std::to_string(i), &value).ok()) << i;
    EXPECT_EQ(value, "value" + std::to_string(i));
  }
}

TEST_P(StoreContractTest, LargeValues) {
  std::string big(300000, 'X');
  ASSERT_TRUE(store_->Put("big", big).ok());
  std::string value;
  ASSERT_TRUE(store_->Get("big", &value).ok());
  EXPECT_EQ(value, big);
}

TEST_P(StoreContractTest, EmptyValue) {
  ASSERT_TRUE(store_->Put("k", "").ok());
  std::string value = "sentinel";
  ASSERT_TRUE(store_->Get("k", &value).ok());
  EXPECT_EQ(value, "");
}

TEST_P(StoreContractTest, StatsCountOperations) {
  ASSERT_TRUE(store_->Put("a", "1").ok());
  std::string value;
  // status intentionally ignored: this test asserts on the counters, not
  // the outcomes.
  (void)store_->Get("a", &value);
  (void)store_->Delete("a");
  StoreStats stats = store_->stats();
  EXPECT_EQ(stats.puts, 1u);
  EXPECT_EQ(stats.gets, 1u);
  EXPECT_EQ(stats.deletes, 1u);
}

INSTANTIATE_TEST_SUITE_P(AllEngines, StoreContractTest,
                         ::testing::Values("mem", "lsm", "lethe", "faster", "btree"),
                         [](const auto& spec) { return std::string(spec.param); });

// -------------------------------------------------- differential (property)

class StoreDifferentialTest : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(StoreDifferentialTest, MatchesReferenceUnderRandomOps) {
  const auto& [engine, seed] = GetParam();
  ScopedTempDir dir;
  auto store_or = OpenStore({.engine = engine, .dir = dir.path() + "/db"});
  ASSERT_TRUE(store_or.ok());
  auto& store = *store_or;
  std::map<std::string, std::string> reference;

  Pcg32 rng(static_cast<uint64_t>(seed));
  const int kOps = 20000;
  const int kKeySpace = 200;
  for (int i = 0; i < kOps; ++i) {
    std::string key = "key" + std::to_string(rng.NextBounded(kKeySpace));
    uint32_t dice = rng.NextBounded(100);
    if (dice < 35) {  // put
      std::string value = "v" + std::to_string(rng.NextU32() % 100000);
      ASSERT_TRUE(store->Put(key, value).ok());
      reference[key] = value;
    } else if (dice < 60) {  // merge/rmw append
      std::string op = "+" + std::to_string(rng.NextU32() % 100);
      if (store->supports_merge()) {
        ASSERT_TRUE(store->Merge(key, op).ok());
      } else {
        ASSERT_TRUE(store->ReadModifyWrite(key, op).ok());
      }
      reference[key] += op;
    } else if (dice < 75) {  // delete
      ASSERT_TRUE(store->Delete(key).ok());
      reference.erase(key);
    } else {  // get
      std::string value;
      Status s = store->Get(key, &value);
      auto it = reference.find(key);
      if (it == reference.end()) {
        EXPECT_TRUE(s.IsNotFound()) << "key " << key << " op " << i << ": " << s.ToString();
      } else {
        ASSERT_TRUE(s.ok()) << "key " << key << " op " << i << ": " << s.ToString();
        EXPECT_EQ(value, it->second) << "key " << key << " op " << i;
      }
    }
  }
  // Final sweep: every key must match.
  for (int k = 0; k < kKeySpace; ++k) {
    std::string key = "key" + std::to_string(k);
    std::string value;
    Status s = store->Get(key, &value);
    auto it = reference.find(key);
    if (it == reference.end()) {
      EXPECT_TRUE(s.IsNotFound()) << key;
    } else {
      ASSERT_TRUE(s.ok()) << key << ": " << s.ToString();
      EXPECT_EQ(value, it->second) << key;
    }
  }
  ASSERT_TRUE(store->Close().ok());
}

INSTANTIATE_TEST_SUITE_P(
    EnginesBySeeds, StoreDifferentialTest,
    ::testing::Combine(::testing::Values("lsm", "lethe", "faster", "btree"),
                       ::testing::Values(1, 2, 3)),
    [](const auto& spec) {
      return std::string(std::get<0>(spec.param)) + "_seed" +
             std::to_string(std::get<1>(spec.param));
    });

// ------------------------------------------------------------ LSM specifics

LsmOptions SmallLsmOptions() {
  LsmOptions opts;
  opts.write_buffer_size = 64 * 1024;  // force frequent flushes
  opts.max_bytes_level_base = 256 * 1024;
  opts.target_file_size = 64 * 1024;
  return opts;
}

TEST(LsmStoreTest, CompactionKeepsDataCorrect) {
  ScopedTempDir dir;
  auto store_or = LsmStore::Open(dir.path(), SmallLsmOptions());
  ASSERT_TRUE(store_or.ok());
  auto& store = *store_or;
  const int n = 5000;
  std::string value(100, 'v');
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(store->Put("key" + std::to_string(i % 500), value + std::to_string(i)).ok());
  }
  // Multiple flushes must have happened and compaction must have run.
  StoreStats stats = store->stats();
  EXPECT_GT(stats.flushes, 2u);
  for (int k = 0; k < 500; ++k) {
    std::string got;
    ASSERT_TRUE(store->Get("key" + std::to_string(k), &got).ok()) << k;
  }
  ASSERT_TRUE(store->Close().ok());
}

TEST(LsmStoreTest, ReopenRecoversData) {
  ScopedTempDir dir;
  {
    auto store = LsmStore::Open(dir.path(), SmallLsmOptions());
    ASSERT_TRUE(store.ok());
    for (int i = 0; i < 3000; ++i) {
      ASSERT_TRUE((*store)->Put("key" + std::to_string(i), "v" + std::to_string(i)).ok());
    }
    ASSERT_TRUE((*store)->Delete("key7").ok());
    ASSERT_TRUE((*store)->Close().ok());
  }
  auto store = LsmStore::Open(dir.path(), SmallLsmOptions());
  ASSERT_TRUE(store.ok());
  std::string value;
  ASSERT_TRUE((*store)->Get("key42", &value).ok());
  EXPECT_EQ(value, "v42");
  EXPECT_TRUE((*store)->Get("key7", &value).IsNotFound());
  ASSERT_TRUE((*store)->Close().ok());
}

TEST(LsmStoreTest, ReopenWithoutCleanCloseReplaysWal) {
  ScopedTempDir dir;
  {
    LsmOptions opts;  // default large buffer: nothing flushes
    auto store = LsmStore::Open(dir.path(), opts);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Put("durable", "yes").ok());
    // Simulate a crash: leak the store without Close() by only flushing the
    // WAL (Close would flush the memtable). We cannot literally crash here,
    // so reopen after a Close that flushed nothing is approximated by
    // closing and verifying the data comes back either via WAL or SSTable.
    ASSERT_TRUE((*store)->Close().ok());
  }
  auto store = LsmStore::Open(dir.path(), LsmOptions());
  ASSERT_TRUE(store.ok());
  std::string value;
  ASSERT_TRUE((*store)->Get("durable", &value).ok());
  EXPECT_EQ(value, "yes");
  ASSERT_TRUE((*store)->Close().ok());
}

TEST(LsmStoreTest, MergeSurvivesFlushAndCompaction) {
  ScopedTempDir dir;
  LsmOptions opts = SmallLsmOptions();
  auto store_or = LsmStore::Open(dir.path(), opts);
  ASSERT_TRUE(store_or.ok());
  auto& store = *store_or;
  ASSERT_TRUE(store->Put("acc", "base").ok());
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(store->Merge("acc", ",“" + std::to_string(i)).ok());
    // Interleave unrelated churn to force flushes between operands.
    ASSERT_TRUE(store->Put("churn" + std::to_string(i % 97), std::string(500, 'c')).ok());
  }
  std::string value;
  ASSERT_TRUE(store->Get("acc", &value).ok());
  EXPECT_TRUE(value.starts_with("base"));
  EXPECT_TRUE(value.ends_with("999"));
  ASSERT_TRUE(store->Close().ok());
}

TEST(LsmStoreTest, LetheReclaimsTombstonesFaster) {
  // Delete-aware mode must compact tombstone-laden files even when size
  // triggers would not fire.
  ScopedTempDir dir;
  LsmOptions opts = SmallLsmOptions();
  opts.delete_aware = true;
  opts.delete_persistence_ms = 50;
  auto store_or = LsmStore::Open(dir.path(), opts);
  ASSERT_TRUE(store_or.ok());
  auto& store = *store_or;
  auto* lsm = static_cast<LsmStore*>(store.get());
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(store->Put("k" + std::to_string(i), std::string(100, 'v')).ok());
  }
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(store->Delete("k" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(store->Flush().ok());
  uint64_t compactions_before = store->stats().compactions;
  // Wait past the delete-persistence threshold: the background thread must
  // pick up the tombstone-laden files on its own.
  for (int spin = 0; spin < 100 && store->stats().compactions == compactions_before; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_GT(store->stats().compactions, compactions_before);
  (void)lsm;
  ASSERT_TRUE(store->Close().ok());
}

// --------------------------------------------------------- FASTER specifics

TEST(FasterStoreTest, InPlaceUpdatesInMutableRegion) {
  ScopedTempDir dir;
  FasterOptions opts;
  auto store_or = FasterStore::Open(dir.path(), opts);
  ASSERT_TRUE(store_or.ok());
  auto* faster = static_cast<FasterStore*>(store_or->get());
  ASSERT_TRUE((*store_or)->Put("k", "12345678").ok());
  uint64_t tail_before = faster->tail_address();
  ASSERT_TRUE((*store_or)->Put("k", "abcdefgh").ok());  // same size -> in place
  EXPECT_EQ(faster->tail_address(), tail_before);
  EXPECT_EQ(faster->in_place_updates(), 1u);
  std::string value;
  ASSERT_TRUE((*store_or)->Get("k", &value).ok());
  EXPECT_EQ(value, "abcdefgh");
  // Different size -> append.
  ASSERT_TRUE((*store_or)->Put("k", "longer value").ok());
  EXPECT_GT(faster->tail_address(), tail_before);
  ASSERT_TRUE((*store_or)->Close().ok());
}

TEST(FasterStoreTest, EvictionToDiskKeepsReadsWorking) {
  ScopedTempDir dir;
  FasterOptions opts;
  opts.log_memory_bytes = 64 * 1024;  // tiny memory window
  auto store_or = FasterStore::Open(dir.path(), opts);
  ASSERT_TRUE(store_or.ok());
  auto* faster = static_cast<FasterStore*>(store_or->get());
  const int n = 6000;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE((*store_or)->Put("key" + std::to_string(i), "value" + std::to_string(i)).ok());
  }
  EXPECT_GT(faster->head_address(), 0u);  // eviction happened
  std::string value;
  for (int i = 0; i < n; i += 41) {  // old keys now live on disk
    ASSERT_TRUE((*store_or)->Get("key" + std::to_string(i), &value).ok()) << i;
    EXPECT_EQ(value, "value" + std::to_string(i));
  }
  ASSERT_TRUE((*store_or)->Close().ok());
}

TEST(FasterStoreTest, RecoveryRebuildsIndex) {
  ScopedTempDir dir;
  {
    auto store = FasterStore::Open(dir.path(), FasterOptions());
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Put("a", "1").ok());
    ASSERT_TRUE((*store)->Put("b", "2").ok());
    ASSERT_TRUE((*store)->Put("a", "3").ok());
    ASSERT_TRUE((*store)->Delete("b").ok());
    ASSERT_TRUE((*store)->Close().ok());
  }
  auto store = FasterStore::Open(dir.path(), FasterOptions());
  ASSERT_TRUE(store.ok());
  std::string value;
  ASSERT_TRUE((*store)->Get("a", &value).ok());
  EXPECT_EQ(value, "3");
  EXPECT_TRUE((*store)->Get("b", &value).IsNotFound());
  ASSERT_TRUE((*store)->Close().ok());
}

// --------------------------------------------------------- B+tree specifics

TEST(BTreeStoreTest, SplitsMaintainInvariants) {
  ScopedTempDir dir;
  BTreeOptions opts;
  opts.page_size = 512;  // tiny pages force deep trees
  auto store_or = BTreeStore::Open(dir.path(), opts);
  ASSERT_TRUE(store_or.ok());
  auto* btree = static_cast<BTreeStore*>(store_or->get());
  const int n = 3000;
  Pcg32 rng(5);
  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) {
    order[static_cast<size_t>(i)] = i;
  }
  // Random insertion order stresses splits everywhere in the tree.
  for (int i = n - 1; i > 0; --i) {
    std::swap(order[static_cast<size_t>(i)],
              order[rng.NextBounded(static_cast<uint32_t>(i + 1))]);
  }
  for (int i : order) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%08d", i);
    ASSERT_TRUE((*store_or)->Put(key, "val" + std::to_string(i)).ok());
  }
  EXPECT_GT(btree->height(), 2u);
  ASSERT_TRUE(btree->CheckInvariants().ok());
  std::string value;
  for (int i = 0; i < n; i += 17) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%08d", i);
    ASSERT_TRUE((*store_or)->Get(key, &value).ok()) << key;
    EXPECT_EQ(value, "val" + std::to_string(i));
  }
  ASSERT_TRUE((*store_or)->Close().ok());
}

TEST(BTreeStoreTest, OverflowValues) {
  ScopedTempDir dir;
  auto store_or = BTreeStore::Open(dir.path(), BTreeOptions());
  ASSERT_TRUE(store_or.ok());
  std::string big(50000, 'O');
  ASSERT_TRUE((*store_or)->Put("big", big).ok());
  ASSERT_TRUE((*store_or)->Put("small", "s").ok());
  std::string value;
  ASSERT_TRUE((*store_or)->Get("big", &value).ok());
  EXPECT_EQ(value, big);
  // Replacing a large value must release and rebuild the chain.
  std::string bigger(120000, 'P');
  ASSERT_TRUE((*store_or)->Put("big", bigger).ok());
  ASSERT_TRUE((*store_or)->Get("big", &value).ok());
  EXPECT_EQ(value, bigger);
  ASSERT_TRUE((*store_or)->Close().ok());
}

TEST(BTreeStoreTest, PersistsAcrossReopen) {
  ScopedTempDir dir;
  BTreeOptions opts;
  opts.page_size = 1024;
  {
    auto store = BTreeStore::Open(dir.path(), opts);
    ASSERT_TRUE(store.ok());
    for (int i = 0; i < 1000; ++i) {
      ASSERT_TRUE((*store)->Put("key" + std::to_string(i), "v" + std::to_string(i)).ok());
    }
    ASSERT_TRUE((*store)->Delete("key500").ok());
    ASSERT_TRUE((*store)->Close().ok());
  }
  auto store = BTreeStore::Open(dir.path(), opts);
  ASSERT_TRUE(store.ok());
  auto* btree = static_cast<BTreeStore*>(store->get());
  ASSERT_TRUE(btree->CheckInvariants().ok());
  std::string value;
  ASSERT_TRUE((*store)->Get("key999", &value).ok());
  EXPECT_EQ(value, "v999");
  EXPECT_TRUE((*store)->Get("key500", &value).IsNotFound());
  ASSERT_TRUE((*store)->Close().ok());
}

// ---------------------------------------------------------- concurrency

TEST(StoreConcurrencyTest, TwoThreadsDisjointKeys) {
  // Fig. 14 shares one store across operators; engines must tolerate
  // concurrent access (single-writer-per-key is guaranteed by the model).
  for (const char* engine : {"lsm", "faster", "btree"}) {
    ScopedTempDir dir;
    auto store_or = OpenStore({.engine = engine, .dir = dir.path() + "/db"});
    ASSERT_TRUE(store_or.ok()) << engine;
    auto& store = *store_or;
    auto worker = [&](int id) {
      for (int i = 0; i < 2000; ++i) {
        std::string key = "t" + std::to_string(id) + "_" + std::to_string(i % 100);
        ASSERT_TRUE(store->Put(key, "v" + std::to_string(i)).ok());
        std::string value;
        Status s = store->Get(key, &value);
        ASSERT_TRUE(s.ok()) << engine << " " << s.ToString();
      }
    };
    std::thread t1(worker, 1), t2(worker, 2);
    t1.join();
    t2.join();
    ASSERT_TRUE(store->Close().ok()) << engine;
  }
}

}  // namespace
}  // namespace gadget
