// Tests for the shared buffer pool and the async read path it backs:
// pin lifetime rules (pinned frames survive eviction pressure and file
// erasure), clock-hand fairness, concurrent pin/unpin vs EraseFile races
// (run under TSan in CI), async MultiGet equivalence against serial Get on
// every engine, pool sharing across stores, and cold-pool crash restore.
#include <fcntl.h>
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "src/common/file_util.h"
#include "src/stores/bufferpool/buffer_pool.h"
#include "src/stores/bufferpool/io_backend.h"
#include "src/stores/kvstore.h"

namespace gadget {
namespace {

BufferPoolOptions TinyPool(uint64_t capacity, int shards = 1) {
  BufferPoolOptions opts;
  opts.capacity_bytes = capacity;
  opts.shards = shards;
  return opts;
}

// ----------------------------------------------------------- pin lifetime

TEST(BufferPoolPinTest, PinnedFramesSurviveEvictionPressure) {
  BufferPool pool(TinyPool(4 * 1024));
  PinnedBlock pinned = pool.InsertBlock(1, 0, std::string(1024, 'p'));
  ASSERT_TRUE(static_cast<bool>(pinned));
  // Flood the pool far past capacity: every unpinned frame gets evicted at
  // some point, the pinned one must not.
  for (uint64_t i = 1; i <= 200; ++i) {
    pool.InsertBlock(1, i * 4096, std::string(1024, 'x'));
  }
  EXPECT_GT(pool.evictions(), 0u);
  EXPECT_EQ(pinned.data(), std::string(1024, 'p'));
  PinnedBlock again = pool.Lookup(1, 0);
  ASSERT_TRUE(static_cast<bool>(again));
  EXPECT_EQ(again.data(), std::string(1024, 'p'));
}

TEST(BufferPoolPinTest, DoomedFrameStaysReadableUntilLastPinDrops) {
  BufferPool pool(TinyPool(64 * 1024));
  PinnedBlock pinned = pool.InsertBlock(3, 0, "doomed-bytes");
  pool.EraseFile(3);
  // Off the table: new lookups miss...
  EXPECT_FALSE(pool.Lookup(3, 0));
  // ...but the outstanding pin still reads valid storage.
  EXPECT_EQ(pinned.data(), "doomed-bytes");
  pinned.Release();
  EXPECT_FALSE(pool.Lookup(3, 0));
}

TEST(BufferPoolPinTest, ReleaseIsIdempotentAndMoveSafe) {
  BufferPool pool(TinyPool(64 * 1024));
  PinnedBlock a = pool.InsertBlock(1, 0, "abc");
  PinnedBlock b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move): moved-from is empty
  EXPECT_EQ(b.data(), "abc");
  b.Release();
  b.Release();
  EXPECT_FALSE(static_cast<bool>(b));
}

TEST(BufferPoolPinTest, InsertOvershootsWhenEverythingIsPinned) {
  BufferPool pool(TinyPool(2 * 1024));
  std::vector<PinnedBlock> pins;
  for (uint64_t i = 0; i < 8; ++i) {
    pins.push_back(pool.InsertBlock(1, i * 4096, std::string(1024, 'x')));
  }
  // 8KB pinned in a 2KB pool: usage overshoots rather than evicting pins.
  EXPECT_GE(pool.usage_bytes(), 8 * 1024u);
  for (auto& p : pins) {
    EXPECT_TRUE(static_cast<bool>(pool.Lookup(1, (&p - pins.data()) * 4096)));
  }
  pins.clear();
  // With pins gone, the next insert shrinks usage back under capacity.
  pool.InsertBlock(1, 9 * 4096, std::string(1024, 'y'));
  EXPECT_LE(pool.usage_bytes(), 2 * 1024u + 1024u);
}

// ------------------------------------------------------ clock-hand fairness

TEST(BufferPoolClockTest, SecondChanceKeepsReReferencedFrames) {
  // One shard so the clock order is deterministic.
  BufferPool pool(TinyPool(4 * 1024));
  // Fill the pool with 4 frames, then keep re-referencing frame 0.
  for (uint64_t i = 0; i < 4; ++i) {
    pool.InsertBlock(1, i * 4096, std::string(1024, 'a' + static_cast<char>(i)));
  }
  for (int round = 0; round < 8; ++round) {
    EXPECT_TRUE(static_cast<bool>(pool.Lookup(1, 0)));  // sets the reference bit
    // Insert a fresh frame: the hand must pass over the referenced frame 0
    // (clearing its bit) and evict one of the cold ones instead.
    pool.InsertBlock(2, static_cast<uint64_t>(round) * 4096, std::string(1024, 'z'));
  }
  EXPECT_TRUE(static_cast<bool>(pool.Lookup(1, 0)));
  EXPECT_GT(pool.evictions(), 0u);
}

TEST(BufferPoolClockTest, ColdFramesRotateOutEvenly) {
  BufferPool pool(TinyPool(8 * 1024));
  // Stream 64 single-use frames through an 8-frame pool: every insert must
  // succeed and the pool must never exceed capacity once nothing is pinned.
  for (uint64_t i = 0; i < 64; ++i) {
    pool.InsertBlock(1, i * 4096, std::string(1024, 'x'));
    EXPECT_LE(pool.usage_bytes(), 8 * 1024u);
  }
  EXPECT_EQ(pool.evictions(), 64u - 8u);
}

TEST(BufferPoolTwoQueueTest, ScanResistance) {
  BufferPoolOptions opts = TinyPool(8 * 1024);
  opts.eviction = BufferPoolOptions::Eviction::kTwoQueue;
  BufferPool pool(opts);
  // Promote two frames to the protected list by touching them again.
  pool.InsertBlock(1, 0, std::string(1024, 'h'));
  pool.InsertBlock(1, 4096, std::string(1024, 'h'));
  EXPECT_TRUE(static_cast<bool>(pool.Lookup(1, 0)));
  EXPECT_TRUE(static_cast<bool>(pool.Lookup(1, 4096)));
  // A long one-shot scan must churn probation, not the protected frames.
  for (uint64_t i = 0; i < 100; ++i) {
    pool.InsertBlock(2, i * 4096, std::string(1024, 's'));
  }
  EXPECT_TRUE(static_cast<bool>(pool.Lookup(1, 0)));
  EXPECT_TRUE(static_cast<bool>(pool.Lookup(1, 4096)));
}

// --------------------------------------------------- concurrent pin/unpin

TEST(BufferPoolConcurrencyTest, PinUnpinEraseFileRaces) {
  BufferPool pool(TinyPool(64 * 1024, /*shards=*/4));
  std::atomic<bool> stop{false};
  // Writers insert blocks for files 1..4, readers pin/read/unpin, an eraser
  // repeatedly drops whole files. TSan (CI leg) checks the synchronization;
  // the assertions check no reader ever observes freed storage.
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&pool, &stop, t] {
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        uint64_t file = 1 + (i % 4);
        pool.InsertBlock(file, (i * 4096) % (64 * 4096),
                         std::string(512, static_cast<char>('a' + t)));
        ++i;
      }
    });
  }
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&pool, &stop] {
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        uint64_t file = 1 + (i % 4);
        if (PinnedBlock h = pool.Lookup(file, (i * 4096) % (64 * 4096))) {
          ASSERT_EQ(h.data().size(), 512u);
          char c = h.data()[0];
          ASSERT_TRUE(c == 'a' || c == 'b');
        }
        ++i;
      }
    });
  }
  threads.emplace_back([&pool, &stop] {
    uint64_t file = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      pool.EraseFile(1 + (file++ % 4));
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : threads) {
    th.join();
  }
}

// ------------------------------------------------------------- io backend

TEST(IoBackendTest, BatchedReadsMatchFileContents) {
  ScopedTempDir dir;
  const std::string path = dir.path() + "/blob";
  std::string blob;
  for (int i = 0; i < 64; ++i) {
    blob += std::string(1024, static_cast<char>('a' + i % 26));
  }
  ASSERT_TRUE(WriteStringToFile(path, blob).ok());
  int fd = ::open(path.c_str(), O_RDONLY);
  ASSERT_GE(fd, 0);
  IoBackend io;
  std::vector<IoRead> reads(16);
  std::vector<IoRead*> ptrs;
  for (size_t i = 0; i < reads.size(); ++i) {
    reads[i].fd = fd;
    reads[i].offset = i * 4096;
    reads[i].length = 1024;
    ptrs.push_back(&reads[i]);
  }
  io.ReadBatch(ptrs);
  for (size_t i = 0; i < reads.size(); ++i) {
    ASSERT_TRUE(reads[i].status.ok()) << reads[i].status.ToString();
    EXPECT_EQ(reads[i].out, blob.substr(i * 4096, 1024));
  }
  EXPECT_GE(io.batches(), 1u);
  EXPECT_GT(io.in_flight_max(), 1u);
  ::close(fd);
}

TEST(IoBackendTest, ShortAndFailedReadsReportPerRead) {
  ScopedTempDir dir;
  const std::string path = dir.path() + "/short";
  ASSERT_TRUE(WriteStringToFile(path, std::string(100, 's')).ok());
  int fd = ::open(path.c_str(), O_RDONLY);
  ASSERT_GE(fd, 0);
  IoBackend io;
  IoRead past_eof;  // starts beyond EOF: must fail, not hang
  past_eof.fd = fd;
  past_eof.offset = 4096;
  past_eof.length = 64;
  IoRead bad_fd;
  bad_fd.fd = -1;
  bad_fd.offset = 0;
  bad_fd.length = 64;
  IoRead good;
  good.fd = fd;
  good.offset = 0;
  good.length = 100;
  io.ReadBatch({&past_eof, &bad_fd, &good});
  EXPECT_FALSE(past_eof.status.ok());
  EXPECT_FALSE(bad_fd.status.ok());
  ASSERT_TRUE(good.status.ok());
  EXPECT_EQ(good.out, std::string(100, 's'));
  ::close(fd);
}

// --------------------------------------- async MultiGet vs serial Get

class MultiGetEquivalenceTest : public ::testing::TestWithParam<const char*> {};

TEST_P(MultiGetEquivalenceTest, BatchedReadsMatchSerialGets) {
  const std::string engine = GetParam();
  ScopedTempDir dir;
  StoreOptions sopts;
  sopts.engine = engine;
  sopts.dir = dir.path() + "/db";
  // Pool far below the working set so MultiGet actually misses and batches.
  sopts.buffer_pool.capacity_bytes = 16 * 1024;
  sopts.buffer_pool.shards = 1;
  auto store = OpenStore(sopts);
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(
        (*store)->Put("key" + std::to_string(i), "value-" + std::to_string(i * 7)).ok());
  }
  ASSERT_TRUE((*store)->Flush().ok());

  // Mix of hits, misses and repeats, large enough to span many blocks.
  std::vector<std::string> keys;
  for (int i = 0; i < n; i += 3) {
    keys.push_back("key" + std::to_string(i));
  }
  keys.push_back("absent-1");
  keys.push_back("key0");
  keys.push_back("absent-2");

  std::vector<std::string> values;
  std::vector<Status> statuses;
  ASSERT_EQ((*store)->MultiGet(keys, &values, &statuses).code(), StatusCode::kOk);
  ASSERT_EQ(values.size(), keys.size());
  ASSERT_EQ(statuses.size(), keys.size());

  std::string serial;
  for (size_t i = 0; i < keys.size(); ++i) {
    Status s = (*store)->Get(keys[i], &serial);
    EXPECT_EQ(s.code(), statuses[i].code()) << keys[i];
    if (s.ok()) {
      EXPECT_EQ(serial, values[i]) << keys[i];
    }
  }
  ASSERT_TRUE((*store)->Close().ok());
}

INSTANTIATE_TEST_SUITE_P(AllEngines, MultiGetEquivalenceTest,
                         ::testing::Values("mem", "lsm", "lethe", "faster", "btree"));

TEST(AsyncMultiGetTest, CacheMissWaveBatchesIo) {
  ScopedTempDir dir;
  StoreOptions sopts;
  sopts.engine = "lsm";
  sopts.dir = dir.path() + "/db";
  sopts.buffer_pool.capacity_bytes = 8 * 1024;  // ~2 blocks: everything misses
  sopts.buffer_pool.shards = 1;
  auto store = OpenStore(sopts);
  ASSERT_TRUE(store.ok());
  for (int i = 0; i < 4000; ++i) {
    ASSERT_TRUE((*store)->Put("key" + std::to_string(i), std::string(64, 'v')).ok());
  }
  ASSERT_TRUE((*store)->Flush().ok());
  std::vector<std::string> keys;
  for (int i = 0; i < 4000; i += 17) {
    keys.push_back("key" + std::to_string(i));
  }
  std::vector<std::string> values;
  std::vector<Status> statuses;
  ASSERT_TRUE((*store)->MultiGet(keys, &values, &statuses).ok());
  for (const Status& s : statuses) {
    EXPECT_TRUE(s.ok());
  }
  StoreStats stats = (*store)->stats();
  EXPECT_GT(stats.io_batches, 0u);
  // The wave issued more than one read concurrently — the acceptance
  // criterion behind the async read path.
  EXPECT_GT(stats.io_in_flight_max, 1u);
  ASSERT_TRUE((*store)->Close().ok());
}

TEST(ReadOptionsTest, NoFillLeavesPoolCold) {
  ScopedTempDir dir;
  StoreOptions sopts;
  sopts.engine = "lsm";
  sopts.dir = dir.path() + "/db";
  auto store = OpenStore(sopts);
  ASSERT_TRUE(store.ok());
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE((*store)->Put("key" + std::to_string(i), std::string(64, 'v')).ok());
  }
  ASSERT_TRUE((*store)->Flush().ok());
  ReadOptions no_fill;
  no_fill.fill_cache = false;
  std::string value;
  ASSERT_TRUE((*store)->Get("key100", &value, no_fill).ok());
  // The same uncached read again: still a miss, because the first one was
  // not admitted.
  StoreStats before = (*store)->stats();
  ASSERT_TRUE((*store)->Get("key100", &value, no_fill).ok());
  StoreStats after = (*store)->stats();
  EXPECT_GT(after.cache_misses, before.cache_misses);
  EXPECT_EQ(after.cache_hits, before.cache_hits);
  ASSERT_TRUE((*store)->Close().ok());
}

// ------------------------------------------------------------ shared pool

TEST(SharedPoolTest, TwoStoresShareOnePool) {
  ScopedTempDir dir;
  auto pool = std::make_shared<BufferPool>(TinyPool(256 * 1024, /*shards=*/2));
  StoreOptions a;
  a.engine = "lsm";
  a.dir = dir.path() + "/a";
  a.shared_pool = pool;
  StoreOptions b;
  b.engine = "btree";
  b.dir = dir.path() + "/b";
  b.shared_pool = pool;
  auto sa = OpenStore(a);
  auto sb = OpenStore(b);
  ASSERT_TRUE(sa.ok());
  ASSERT_TRUE(sb.ok());
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE((*sa)->Put("lsm" + std::to_string(i), std::string(64, 'a')).ok());
    ASSERT_TRUE((*sb)->Put("bt" + std::to_string(i), std::string(64, 'b')).ok());
  }
  ASSERT_TRUE((*sa)->Flush().ok());
  ASSERT_TRUE((*sb)->Flush().ok());
  std::string value;
  for (int i = 0; i < 500; i += 11) {
    ASSERT_TRUE((*sa)->Get("lsm" + std::to_string(i), &value).ok());
    ASSERT_TRUE((*sb)->Get("bt" + std::to_string(i), &value).ok());
  }
  // Both engines report the same pool-wide counters.
  EXPECT_EQ((*sa)->stats().cache_misses, (*sb)->stats().cache_misses);
  EXPECT_LE(pool->usage_bytes(), pool->capacity_bytes() + 64 * 1024);
  ASSERT_TRUE((*sa)->Close().ok());
  // Closing one store must not disturb the other's cached data.
  ASSERT_TRUE((*sb)->Get("bt22", &value).ok());
  ASSERT_TRUE((*sb)->Close().ok());
}

// -------------------------------------------------- cold-pool crash restore

TEST(ColdRestoreTest, RestartWithFreshPoolServesAllData) {
  ScopedTempDir dir;
  const std::string db = dir.path() + "/db";
  StoreOptions sopts;
  sopts.engine = "lsm";
  sopts.dir = db;
  {
    auto store = OpenStore(sopts);
    ASSERT_TRUE(store.ok());
    for (int i = 0; i < 1000; ++i) {
      ASSERT_TRUE((*store)->Put("key" + std::to_string(i), "v" + std::to_string(i)).ok());
    }
    ASSERT_TRUE((*store)->Flush().ok());
    // No Close(): simulate a crash. SSTs + manifest are durable post-flush.
  }
  // Restart with a brand-new (cold) pool, as harness recovery does.
  sopts.shared_pool = std::make_shared<BufferPool>(TinyPool(64 * 1024, /*shards=*/2));
  auto restored = OpenStore(sopts);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(sopts.shared_pool->hits(), 0u);
  std::string value;
  std::vector<std::string> keys;
  for (int i = 0; i < 1000; ++i) {
    keys.push_back("key" + std::to_string(i));
  }
  std::vector<std::string> values;
  std::vector<Status> statuses;
  ASSERT_TRUE((*restored)->MultiGet(keys, &values, &statuses).ok());
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(statuses[static_cast<size_t>(i)].ok()) << i;
    EXPECT_EQ(values[static_cast<size_t>(i)], "v" + std::to_string(i));
  }
  ASSERT_TRUE((*restored)->Close().ok());
}

}  // namespace
}  // namespace gadget
