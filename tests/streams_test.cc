// Tests for the event model, trace file I/O, and the synthetic dataset
// generators (ordering, lifecycle pairing, determinism).
#include <gtest/gtest.h>

#include <map>

#include "src/common/file_util.h"
#include "src/streams/dataset.h"
#include "src/streams/event.h"
#include "src/streams/state_access.h"
#include "src/streams/trace_io.h"

namespace gadget {
namespace {

TEST(StateKeyTest, EncodingPreservesOrder) {
  std::vector<StateKey> keys = {
      {0, 0}, {0, 1}, {0, 1000}, {1, 0}, {1, 5}, {42, 7}, {~0ull, ~0ull}};
  for (size_t i = 1; i < keys.size(); ++i) {
    EXPECT_LT(EncodeStateKey(keys[i - 1]), EncodeStateKey(keys[i]));
  }
}

TEST(StateKeyTest, EncodeDecodeRoundTrip) {
  StateKey k{0xdeadbeefcafef00dULL, 42};
  EXPECT_EQ(DecodeStateKey(EncodeStateKey(k)), k);
}

TEST(EventTraceTest, RoundTrip) {
  ScopedTempDir dir;
  const std::string path = dir.path() + "/events.trace";
  std::vector<Event> events;
  for (int i = 0; i < 1000; ++i) {
    Event e;
    e.event_time_ms = static_cast<uint64_t>(i) * 7;
    e.key = static_cast<uint64_t>(i % 13);
    e.value_size = 64;
    e.attr = static_cast<uint32_t>(i % 3);
    e.stream_id = static_cast<uint8_t>(i % 2);
    e.expiry_time_ms = i % 5 == 0 ? e.event_time_ms + 100 : 0;
    events.push_back(e);
  }
  events.push_back(Event::Watermark(99999));

  auto writer = EventTraceWriter::Create(path);
  ASSERT_TRUE(writer.ok());
  for (const Event& e : events) {
    ASSERT_TRUE((*writer)->Append(e).ok());
  }
  ASSERT_TRUE((*writer)->Finish().ok());

  auto reader = EventTraceReader::Open(path);
  ASSERT_TRUE(reader.ok());
  for (const Event& want : events) {
    Event got;
    auto more = (*reader)->Next(&got);
    ASSERT_TRUE(more.ok());
    ASSERT_TRUE(*more);
    EXPECT_EQ(got.event_time_ms, want.event_time_ms);
    EXPECT_EQ(got.key, want.key);
    EXPECT_EQ(got.value_size, want.value_size);
    EXPECT_EQ(got.attr, want.attr);
    EXPECT_EQ(got.stream_id, want.stream_id);
    EXPECT_EQ(got.expiry_time_ms, want.expiry_time_ms);
    EXPECT_EQ(got.kind, want.kind);
  }
  Event sentinel;
  auto done = (*reader)->Next(&sentinel);
  ASSERT_TRUE(done.ok());
  EXPECT_FALSE(*done);
}

TEST(EventTraceTest, DetectsCorruption) {
  ScopedTempDir dir;
  const std::string path = dir.path() + "/events.trace";
  auto writer = EventTraceWriter::Create(path);
  ASSERT_TRUE(writer.ok());
  Event e;
  e.event_time_ms = 5;
  ASSERT_TRUE((*writer)->Append(e).ok());
  ASSERT_TRUE((*writer)->Finish().ok());

  std::string raw;
  ASSERT_TRUE(ReadFileToString(path, &raw).ok());
  // The record body starts after the 16-byte header; flip a bit there so the
  // trailing CRC no longer matches.
  raw[17] ^= 0x40;
  ASSERT_TRUE(WriteStringToFile(path, raw).ok());
  EXPECT_FALSE(EventTraceReader::Open(path).ok());
}

TEST(AccessTraceTest, RoundTrip) {
  ScopedTempDir dir;
  const std::string path = dir.path() + "/access.trace";
  std::vector<StateAccess> trace;
  for (int i = 0; i < 5000; ++i) {
    StateAccess a;
    a.op = static_cast<OpType>(i % 4);
    a.key = {static_cast<uint64_t>(i % 100), static_cast<uint64_t>(i % 7)};
    a.value_size = a.op == OpType::kPut ? 64 : 0;
    a.timestamp = static_cast<uint64_t>(i);
    trace.push_back(a);
  }
  ASSERT_TRUE(WriteAccessTrace(path, trace).ok());
  auto back = ReadAccessTrace(path);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), trace.size());
  for (size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ((*back)[i].op, trace[i].op);
    EXPECT_EQ((*back)[i].key, trace[i].key);
    EXPECT_EQ((*back)[i].value_size, trace[i].value_size);
    EXPECT_EQ((*back)[i].timestamp, trace[i].timestamp);
  }
}

TEST(AccessTraceTest, EmptyTrace) {
  ScopedTempDir dir;
  const std::string path = dir.path() + "/empty.trace";
  ASSERT_TRUE(WriteAccessTrace(path, {}).ok());
  auto back = ReadAccessTrace(path);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->empty());
}

// ------------------------------------------------------------------ datasets

class DatasetTest : public ::testing::TestWithParam<const char*> {};

TEST_P(DatasetTest, EmitsEventsInTimeOrder) {
  auto gen = MakeDataset(GetParam(), 20000, 1);
  ASSERT_TRUE(gen.ok());
  Event e;
  uint64_t prev = 0;
  uint64_t count = 0;
  while ((*gen)->Next(&e)) {
    ASSERT_GE(e.event_time_ms, prev) << "at event " << count;
    prev = e.event_time_ms;
    ++count;
  }
  EXPECT_EQ(count, 20000u);
}

TEST_P(DatasetTest, DeterministicGivenSeed) {
  auto a = MakeDataset(GetParam(), 5000, 99);
  auto b = MakeDataset(GetParam(), 5000, 99);
  ASSERT_TRUE(a.ok() && b.ok());
  Event ea, eb;
  while (true) {
    bool ma = (*a)->Next(&ea);
    bool mb = (*b)->Next(&eb);
    ASSERT_EQ(ma, mb);
    if (!ma) {
      break;
    }
    EXPECT_EQ(ea.event_time_ms, eb.event_time_ms);
    EXPECT_EQ(ea.key, eb.key);
    EXPECT_EQ(ea.attr, eb.attr);
  }
}

TEST_P(DatasetTest, SeedsChangeTheStream) {
  auto a = MakeDataset(GetParam(), 2000, 1);
  auto b = MakeDataset(GetParam(), 2000, 2);
  ASSERT_TRUE(a.ok() && b.ok());
  auto ea = CollectEvents(**a);
  auto eb = CollectEvents(**b);
  int diff = 0;
  for (size_t i = 0; i < std::min(ea.size(), eb.size()); ++i) {
    if (ea[i].key != eb[i].key || ea[i].event_time_ms != eb[i].event_time_ms) {
      ++diff;
    }
  }
  EXPECT_GT(diff, 100);
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, DatasetTest, ::testing::Values("borg", "taxi", "azure"));

TEST(BorgDatasetTest, JobLifecyclePairing) {
  BorgOptions opts;
  opts.max_events = 50000;
  auto gen = MakeBorgGenerator(opts);
  std::map<uint64_t, int> submits, finishes;
  std::map<uint64_t, int> scheduled, finished_tasks;
  Event e;
  while (gen->Next(&e)) {
    switch (e.attr) {
      case event_attr::kBorgJobSubmit:
        ++submits[e.key];
        break;
      case event_attr::kBorgJobFinish:
        ++finishes[e.key];
        EXPECT_GT(e.expiry_time_ms, 0u);
        break;
      case event_attr::kBorgTaskSchedule:
        ++scheduled[e.key];
        break;
      case event_attr::kBorgTaskFinish:
        ++finished_tasks[e.key];
        break;
    }
  }
  // Every finished job was submitted exactly once.
  for (const auto& [job, n] : finishes) {
    EXPECT_EQ(n, 1);
    EXPECT_EQ(submits[job], 1);
  }
  // Task events vastly outnumber job events (paper: 2.5M vs 26K).
  uint64_t task_events = 0, job_events = 0;
  for (const auto& [k, v] : scheduled) task_events += static_cast<uint64_t>(v);
  for (const auto& [k, v] : finished_tasks) task_events += static_cast<uint64_t>(v);
  for (const auto& [k, v] : submits) job_events += static_cast<uint64_t>(v);
  for (const auto& [k, v] : finishes) job_events += static_cast<uint64_t>(v);
  EXPECT_GT(task_events, job_events * 5);
}

TEST(TaxiDatasetTest, PickupBeforeDropoff) {
  TaxiOptions opts;
  opts.max_events = 30000;
  auto gen = MakeTaxiGenerator(opts);
  std::map<uint64_t, uint64_t> last_pickup;
  Event e;
  uint64_t rides_checked = 0;
  while (gen->Next(&e)) {
    if (e.attr == event_attr::kTaxiPickup) {
      last_pickup[e.key] = e.event_time_ms;
    } else if (e.attr == event_attr::kTaxiDropoff) {
      auto it = last_pickup.find(e.key);
      if (it != last_pickup.end()) {
        EXPECT_GE(e.event_time_ms, it->second);
        ++rides_checked;
      }
    }
  }
  EXPECT_GT(rides_checked, 100u);
}

TEST(TaxiDatasetTest, HasTwoStreams) {
  TaxiOptions opts;
  opts.max_events = 20000;
  auto gen = MakeTaxiGenerator(opts);
  EXPECT_EQ(gen->num_streams(), 2);
  bool saw_fare = false;
  Event e;
  while (gen->Next(&e)) {
    if (e.stream_id == 1) {
      EXPECT_EQ(e.attr, event_attr::kTaxiFare);
      saw_fare = true;
    }
  }
  EXPECT_TRUE(saw_fare);
}

TEST(AzureDatasetTest, SubscriptionSkew) {
  AzureOptions opts;
  opts.max_events = 50000;
  auto gen = MakeAzureGenerator(opts);
  std::map<uint64_t, int> per_sub;
  Event e;
  while (gen->Next(&e)) {
    if (e.attr == event_attr::kAzureVmCreate) {
      ++per_sub[e.key];
    }
  }
  // Heavy-tailed: the hottest subscription sees far more than the mean.
  int max_count = 0;
  int total = 0;
  for (const auto& [sub, n] : per_sub) {
    max_count = std::max(max_count, n);
    total += n;
  }
  double mean = static_cast<double>(total) / static_cast<double>(per_sub.size());
  EXPECT_GT(max_count, mean * 10);
}

TEST(DatasetFactoryTest, RejectsUnknown) {
  EXPECT_FALSE(MakeDataset("bing", 10, 1).ok());
}

}  // namespace
}  // namespace gadget
