// Tests for the analysis toolkit on hand-computable miniature traces, plus
// statistical sanity checks for the KS test and Wasserstein distance.
#include <gtest/gtest.h>

#include "src/analysis/metrics.h"
#include "src/analysis/stats_tests.h"

namespace gadget {
namespace {

StateAccess Acc(OpType op, uint64_t hi, uint64_t lo = 0, uint64_t t = 0) {
  return StateAccess{op, StateKey{hi, lo}, op == OpType::kGet ? 0u : 8u, t};
}

std::vector<StateAccess> KeySeq(std::initializer_list<uint64_t> keys) {
  std::vector<StateAccess> trace;
  uint64_t t = 0;
  for (uint64_t k : keys) {
    trace.push_back(Acc(OpType::kGet, k, 0, t++));
  }
  return trace;
}

// ------------------------------------------------------------- composition

TEST(CompositionTest, CountsFractions) {
  std::vector<StateAccess> trace = {
      Acc(OpType::kGet, 1), Acc(OpType::kGet, 2), Acc(OpType::kPut, 1),
      Acc(OpType::kMerge, 2), Acc(OpType::kDelete, 1),
  };
  OpComposition c = ComputeComposition(trace);
  EXPECT_EQ(c.total, 5u);
  EXPECT_DOUBLE_EQ(c.get, 0.4);
  EXPECT_DOUBLE_EQ(c.put, 0.2);
  EXPECT_DOUBLE_EQ(c.merge, 0.2);
  EXPECT_DOUBLE_EQ(c.del, 0.2);
}

TEST(CompositionTest, EmptyTrace) {
  OpComposition c = ComputeComposition({});
  EXPECT_EQ(c.total, 0u);
  EXPECT_DOUBLE_EQ(c.get, 0.0);
}

// ------------------------------------------------------------ amplification

TEST(AmplificationTest, ComputesBothRatios) {
  std::vector<Event> events;
  for (uint64_t i = 0; i < 10; ++i) {
    Event e;
    e.key = i % 2;  // 2 distinct input keys
    events.push_back(e);
  }
  events.push_back(Event::Watermark(5));  // not counted
  std::vector<StateAccess> trace;
  for (uint64_t i = 0; i < 30; ++i) {
    trace.push_back(Acc(OpType::kGet, i % 6, i % 2));  // 6 hi x 2 lo = keys
  }
  Amplification amp = ComputeAmplification(events, trace);
  EXPECT_DOUBLE_EQ(amp.event_amplification, 3.0);
  EXPECT_EQ(amp.distinct_input_keys, 2u);
  EXPECT_EQ(amp.distinct_state_keys, 6u);
  EXPECT_DOUBLE_EQ(amp.key_amplification, 3.0);
}

// ----------------------------------------------------------- stack distance

TEST(StackDistanceTest, HandComputedSequence) {
  // Sequence a b a c b a:
  //   a@2: keys since a@0 = {b}        -> 1
  //   b@4: keys since b@1 = {a, c}     -> 2
  //   a@5: keys since a@2 = {c, b}     -> 2
  auto result = ComputeStackDistances(KeySeq({10, 20, 10, 30, 20, 10}));
  EXPECT_EQ(result.cold_misses, 3u);
  ASSERT_EQ(result.distances.size(), 3u);
  EXPECT_EQ(result.distances[0], 1u);
  EXPECT_EQ(result.distances[1], 2u);
  EXPECT_EQ(result.distances[2], 2u);
}

TEST(StackDistanceTest, RepeatedKeyHasZeroDistance) {
  auto result = ComputeStackDistances(KeySeq({1, 1, 1, 1}));
  EXPECT_EQ(result.cold_misses, 1u);
  ASSERT_EQ(result.distances.size(), 3u);
  for (uint64_t d : result.distances) {
    EXPECT_EQ(d, 0u);
  }
}

TEST(StackDistanceTest, ShuffledTraceHasHigherMeanDistance) {
  // A looping pattern has low stack distance; shuffling raises it.
  std::vector<StateAccess> trace;
  for (int round = 0; round < 200; ++round) {
    for (uint64_t k = 0; k < 5; ++k) {
      trace.push_back(Acc(OpType::kGet, 100 + (static_cast<uint64_t>(round) / 50) * 5 + k));
    }
  }
  auto original = ComputeStackDistances(trace);
  auto shuffled = ComputeStackDistances(ShuffleTrace(trace, 7));
  EXPECT_LT(original.Mean(), shuffled.Mean());
}

TEST(StackDistanceTest, DistancesBoundedByDistinctKeys) {
  std::vector<StateAccess> trace;
  for (int i = 0; i < 1000; ++i) {
    trace.push_back(Acc(OpType::kGet, static_cast<uint64_t>(i * 7919 % 97)));
  }
  auto result = ComputeStackDistances(trace);
  for (uint64_t d : result.distances) {
    EXPECT_LT(d, 97u);
  }
}

// --------------------------------------------------------- unique sequences

TEST(UniqueSequencesTest, HandComputed) {
  // Keys: 1 2 1 2 1 — distinct 1-grams {1,2}=2; 2-grams {12,21}=2;
  // 3-grams {121,212}=2; 4-grams {1212,2121}=2.
  auto counts = CountUniqueSequences(KeySeq({1, 2, 1, 2, 1}), 4);
  EXPECT_EQ(counts, (std::vector<uint64_t>{2, 2, 2, 2}));
}

TEST(UniqueSequencesTest, ShuffleIncreasesSequenceCount) {
  std::vector<StateAccess> trace;
  for (int round = 0; round < 500; ++round) {
    for (uint64_t k = 0; k < 4; ++k) {
      trace.push_back(Acc(OpType::kGet, k));
    }
  }
  auto original = CountUniqueSequences(trace, 6);
  auto shuffled = CountUniqueSequences(ShuffleTrace(trace, 3), 6);
  EXPECT_EQ(original[0], shuffled[0]);  // key popularity preserved
  EXPECT_LT(original[5], shuffled[5]);  // ordering destroyed
}

TEST(UniqueSequencesTest, ShortTrace) {
  auto counts = CountUniqueSequences(KeySeq({1, 2}), 5);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 0u);  // no 3-grams in a 2-access trace
}

// -------------------------------------------------------------- working set

TEST(WorkingSetTest, TracksActiveSpans) {
  // Key 1 active over [0,3], key 2 over [1,2], key 3 at [4,4].
  std::vector<StateAccess> trace = {
      Acc(OpType::kPut, 1, 0, 0), Acc(OpType::kPut, 2, 0, 1), Acc(OpType::kGet, 2, 0, 2),
      Acc(OpType::kDelete, 1, 0, 3), Acc(OpType::kPut, 3, 0, 4),
  };
  auto timeline = ComputeWorkingSetTimeline(trace, 1);
  ASSERT_EQ(timeline.size(), 5u);
  EXPECT_EQ(timeline[0].active_keys, 1u);
  EXPECT_EQ(timeline[1].active_keys, 2u);
  EXPECT_EQ(timeline[2].active_keys, 2u);
  EXPECT_EQ(timeline[3].active_keys, 1u);
  EXPECT_EQ(timeline[4].active_keys, 1u);
}

TEST(WorkingSetTest, GrowsToFullKeySetThenDrains) {
  std::vector<StateAccess> trace;
  for (uint64_t i = 0; i < 100; ++i) {
    trace.push_back(Acc(OpType::kPut, i % 20, 0, i));  // keys keep recurring
  }
  auto timeline = ComputeWorkingSetTimeline(trace, 10);
  ASSERT_EQ(timeline.size(), 10u);
  // All 20 keys become active within the first round and stay active until
  // each key's final access near the end of the trace.
  EXPECT_EQ(timeline[2].active_keys, 20u);
  EXPECT_EQ(timeline[7].active_keys, 20u);
  // The last sample sits inside the final round, where keys progressively
  // see their last access.
  EXPECT_LE(timeline[9].active_keys, 20u);
}

// ---------------------------------------------------------------------- TTL

TEST(TtlTest, SpansFirstToLastAccess) {
  std::vector<StateAccess> trace = {
      Acc(OpType::kPut, 1, 0, 0),  // pos 0
      Acc(OpType::kPut, 2, 0, 1),  // pos 1
      Acc(OpType::kGet, 1, 0, 2),  // pos 2 -> key 1 ttl = 2
  };
  auto ttls = ComputeKeyTtls(trace);
  std::sort(ttls.begin(), ttls.end());
  EXPECT_EQ(ttls, (std::vector<uint64_t>{0, 2}));
}

TEST(TtlTest, Percentiles) {
  std::vector<uint64_t> values;
  for (uint64_t i = 1; i <= 100; ++i) {
    values.push_back(i);
  }
  EXPECT_EQ(PercentileOf(values, 0), 1u);
  EXPECT_EQ(PercentileOf(values, 50), 50u);
  EXPECT_EQ(PercentileOf(values, 100), 100u);
  EXPECT_EQ(PercentileOf({}, 50), 0u);
}

// ------------------------------------------------------------------ KS test

TEST(KsTest, IdenticalSamplesPass) {
  std::vector<double> a, b;
  for (int i = 0; i < 1000; ++i) {
    a.push_back(i % 97 / 97.0);
    b.push_back(i % 97 / 97.0);
  }
  KsResult r = KsTest(a, b);
  EXPECT_NEAR(r.d, 0.0, 1e-12);
  EXPECT_GT(r.p_value, 0.99);
  EXPECT_FALSE(r.Rejects());
}

TEST(KsTest, DisjointSamplesReject) {
  std::vector<double> a(500, 0.1), b(500, 0.9);
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] += 0.0001 * static_cast<double>(i);
    b[i] += 0.0001 * static_cast<double>(i);
  }
  KsResult r = KsTest(a, b);
  EXPECT_GT(r.d, 0.9);
  EXPECT_TRUE(r.Rejects());
}

TEST(KsTest, SkewedVsUniformRejects) {
  std::vector<double> uniform, skewed;
  for (int i = 0; i < 2000; ++i) {
    uniform.push_back(i / 2000.0);
    skewed.push_back((i / 2000.0) * (i / 2000.0));  // quadratic CDF warp
  }
  EXPECT_TRUE(KsTest(uniform, skewed).Rejects());
}

// -------------------------------------------------------------- Wasserstein

TEST(WassersteinTest, IdenticalIsZero) {
  std::vector<double> a = {1, 2, 3, 4, 5};
  EXPECT_NEAR(Wasserstein1D(a, a), 0.0, 1e-12);
}

TEST(WassersteinTest, ShiftedByConstant) {
  std::vector<double> a = {0, 1, 2, 3}, b = {10, 11, 12, 13};
  EXPECT_NEAR(Wasserstein1D(a, b), 10.0, 1e-9);
}

TEST(WassersteinTest, ScalesWithDivergence) {
  std::vector<double> base = {0, 1, 2, 3};
  std::vector<double> near = {0.5, 1.5, 2.5, 3.5};
  std::vector<double> far = {5, 6, 7, 8};
  EXPECT_LT(Wasserstein1D(base, near), Wasserstein1D(base, far));
}

// --------------------------------------------------------------- rank maps

TEST(RankTest, AggregationStateKeysRankLikeEventKeys) {
  std::vector<Event> events;
  std::vector<StateAccess> trace;
  uint64_t keys[] = {5, 3, 5, 9, 3, 5};
  for (uint64_t k : keys) {
    Event e;
    e.key = k;
    events.push_back(e);
    trace.push_back(Acc(OpType::kGet, k, 0));  // aggregation: state key = (k, 0)
  }
  KsResult r = KsTest(EventKeyRanks(events), StateKeyRanks(trace));
  EXPECT_NEAR(r.d, 0.0, 1e-12);  // Table 2: aggregation passes the KS test
}

TEST(RankTest, WindowKeysDivergeFromEventKeys) {
  std::vector<Event> events;
  std::vector<StateAccess> trace;
  for (int i = 0; i < 3000; ++i) {
    Event e;
    e.key = static_cast<uint64_t>(i % 10 == 0 ? 1 : 2);  // highly skewed input
    events.push_back(e);
    // Window state keys: unique (key, window) pairs — near-uniform.
    trace.push_back(Acc(OpType::kGet, e.key, static_cast<uint64_t>(i)));
  }
  KsResult r = KsTest(EventKeyRanks(events), StateKeyRanks(trace));
  EXPECT_TRUE(r.Rejects());
}

TEST(ShuffleTest, PreservesMultiset) {
  auto trace = KeySeq({1, 1, 2, 3, 3, 3});
  auto shuffled = ShuffleTrace(trace, 5);
  ASSERT_EQ(shuffled.size(), trace.size());
  std::multiset<uint64_t> a, b;
  for (size_t i = 0; i < trace.size(); ++i) {
    a.insert(trace[i].key.hi);
    b.insert(shuffled[i].key.hi);
  }
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace gadget
