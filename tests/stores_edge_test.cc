// Edge-case tests for the storage engines: boundary value sizes, key
// ordering at the encoding level, cache-pressure behaviour, FASTER region
// transitions, B+tree page boundary conditions, and Lethe-vs-LSM contrast.
#include <gtest/gtest.h>

#include <thread>

#include "src/common/file_util.h"
#include "src/stores/btree/btree_store.h"
#include "src/stores/faster/faster_store.h"
#include "src/stores/kvstore.h"
#include "src/stores/lsm/lsm_store.h"
#include "src/streams/state_access.h"

namespace gadget {
namespace {

// ------------------------------------------------------- value-size sweeps

class ValueSizeTest
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(ValueSizeTest, RoundTripsExactBytes) {
  const auto& [engine, size] = GetParam();
  ScopedTempDir dir;
  StoreOptions sopts;
  sopts.engine = engine;
  sopts.dir = dir.path() + "/db";
  auto store = OpenStore(sopts);
  ASSERT_TRUE(store.ok());
  std::string value;
  value.reserve(static_cast<size_t>(size));
  for (int i = 0; i < size; ++i) {
    value.push_back(static_cast<char>(i * 131 + 7));
  }
  ASSERT_TRUE((*store)->Put("k", value).ok());
  std::string got;
  ASSERT_TRUE((*store)->Get("k", &got).ok());
  EXPECT_EQ(got, value);
  // Survive a flush cycle too.
  ASSERT_TRUE((*store)->Flush().ok());
  ASSERT_TRUE((*store)->Get("k", &got).ok());
  EXPECT_EQ(got, value);
  ASSERT_TRUE((*store)->Close().ok());
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, ValueSizeTest,
    ::testing::Combine(::testing::Values("lsm", "faster", "btree"),
                       ::testing::Values(0, 1, 255, 1024, 4096, 4097, 65536, 1'000'000)),
    [](const auto& spec) {
      return std::string(std::get<0>(spec.param)) + "_" +
             std::to_string(std::get<1>(spec.param)) + "b";
    });

// -------------------------------------------------------------- key quirks

TEST(KeyEdgeTest, BinaryKeysWithEmbeddedZeros) {
  for (const char* engine : {"lsm", "faster", "btree"}) {
    ScopedTempDir dir;
    auto store = OpenStore({.engine = engine, .dir = dir.path() + "/db"});
    ASSERT_TRUE(store.ok()) << engine;
    std::string k1("\x00\x01\x00", 3);
    std::string k2("\x00\x01\x00\x00", 4);  // prefix of nothing: distinct key
    ASSERT_TRUE((*store)->Put(k1, "one").ok());
    ASSERT_TRUE((*store)->Put(k2, "two").ok());
    std::string value;
    ASSERT_TRUE((*store)->Get(k1, &value).ok()) << engine;
    EXPECT_EQ(value, "one");
    ASSERT_TRUE((*store)->Get(k2, &value).ok()) << engine;
    EXPECT_EQ(value, "two");
    ASSERT_TRUE((*store)->Close().ok());
  }
}

TEST(KeyEdgeTest, StateKeyEncodingAgreesWithStoreOrdering) {
  // Writes via encoded StateKeys and checks extremes round-trip.
  ScopedTempDir dir;
  auto store = OpenStore({.engine = "btree", .dir = dir.path() + "/db"});
  ASSERT_TRUE(store.ok());
  StateKey keys[] = {{0, 0}, {0, ~0ull}, {~0ull, 0}, {~0ull, ~0ull}, {1ull << 63, 42}};
  for (const StateKey& k : keys) {
    ASSERT_TRUE((*store)->Put(EncodeStateKey(k), std::to_string(k.hi ^ k.lo)).ok());
  }
  std::string value;
  for (const StateKey& k : keys) {
    ASSERT_TRUE((*store)->Get(EncodeStateKey(k), &value).ok());
    EXPECT_EQ(value, std::to_string(k.hi ^ k.lo));
  }
  ASSERT_TRUE((*store)->Close().ok());
}

// ----------------------------------------------------------- cache pressure

TEST(CachePressureTest, LsmReadsWorkWithTinyCache) {
  ScopedTempDir dir;
  LsmOptions opts;
  opts.write_buffer_size = 16 * 1024;
  // Pathological pool: ~1 block resident.
  auto pool = std::make_shared<BufferPool>(
      BufferPoolOptions{.capacity_bytes = 4 * 1024, .shards = 1});
  auto store = LsmStore::Open(dir.path(), opts, pool);
  ASSERT_TRUE(store.ok());
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE((*store)->Put("key" + std::to_string(i), "v" + std::to_string(i)).ok());
  }
  std::string value;
  for (int i = 0; i < 2000; i += 7) {
    ASSERT_TRUE((*store)->Get("key" + std::to_string(i), &value).ok()) << i;
    EXPECT_EQ(value, "v" + std::to_string(i));
  }
  StoreStats stats = (*store)->stats();
  EXPECT_GT(stats.cache_misses, 0u);
  ASSERT_TRUE((*store)->Close().ok());
}

TEST(CachePressureTest, BTreeEvictsDirtyPagesCorrectly) {
  ScopedTempDir dir;
  BTreeOptions opts;
  opts.page_size = 512;
  // 4-page pool: every leaf walk evicts; dirty pages must survive via the
  // dirty table.
  auto pool = std::make_shared<BufferPool>(
      BufferPoolOptions{.capacity_bytes = 2 * 1024, .shards = 1});
  auto store = BTreeStore::Open(dir.path(), opts, pool);
  ASSERT_TRUE(store.ok());
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE((*store)->Put("key" + std::to_string(i), "v" + std::to_string(i)).ok());
  }
  std::string value;
  for (int i = 0; i < 2000; i += 13) {
    ASSERT_TRUE((*store)->Get("key" + std::to_string(i), &value).ok()) << i;
    EXPECT_EQ(value, "v" + std::to_string(i));
  }
  auto* btree = static_cast<BTreeStore*>(store->get());
  ASSERT_TRUE(btree->CheckInvariants().ok());
  ASSERT_TRUE((*store)->Close().ok());
}

// --------------------------------------------------------- FASTER specifics

TEST(FasterEdgeTest, RmwReadsBaseFromDiskRegion) {
  ScopedTempDir dir;
  FasterOptions opts;
  opts.log_memory_bytes = 8 * 1024;  // tiny window: bases evict quickly
  auto store = FasterStore::Open(dir.path(), opts);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put("acc", "BASE-").ok());
  // Push the base record out of memory with churn.
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE((*store)->Put("churn" + std::to_string(i), std::string(64, 'c')).ok());
  }
  auto* faster = static_cast<FasterStore*>(store->get());
  EXPECT_GT(faster->head_address(), 0u);
  ASSERT_TRUE((*store)->ReadModifyWrite("acc", "tail").ok());
  std::string value;
  ASSERT_TRUE((*store)->Get("acc", &value).ok());
  EXPECT_EQ(value, "BASE-tail");
  ASSERT_TRUE((*store)->Close().ok());
}

TEST(FasterEdgeTest, DeleteThenRecoverDropsKey) {
  ScopedTempDir dir;
  FasterOptions opts;
  opts.log_memory_bytes = 8 * 1024;
  {
    auto store = FasterStore::Open(dir.path(), opts);
    ASSERT_TRUE(store.ok());
    for (int i = 0; i < 500; ++i) {
      ASSERT_TRUE((*store)->Put("k" + std::to_string(i), "v").ok());
    }
    for (int i = 0; i < 500; i += 2) {
      ASSERT_TRUE((*store)->Delete("k" + std::to_string(i)).ok());
    }
    ASSERT_TRUE((*store)->Close().ok());
  }
  auto store = FasterStore::Open(dir.path(), opts);
  ASSERT_TRUE(store.ok());
  std::string value;
  EXPECT_TRUE((*store)->Get("k0", &value).IsNotFound());
  ASSERT_TRUE((*store)->Get("k1", &value).ok());
  ASSERT_TRUE((*store)->Close().ok());
}

TEST(FasterEdgeTest, TruncatesTornLogTail) {
  ScopedTempDir dir;
  {
    auto store = FasterStore::Open(dir.path(), FasterOptions());
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Put("good", "value").ok());
    ASSERT_TRUE((*store)->Put("torn", "casualty").ok());
    ASSERT_TRUE((*store)->Close().ok());
  }
  // Chop bytes off the log to simulate a torn write.
  std::string log;
  ASSERT_TRUE(ReadFileToString(dir.path() + "/hybrid.log", &log).ok());
  log.resize(log.size() - 5);
  ASSERT_TRUE(WriteStringToFile(dir.path() + "/hybrid.log", log).ok());

  auto store = FasterStore::Open(dir.path(), FasterOptions());
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  std::string value;
  ASSERT_TRUE((*store)->Get("good", &value).ok());
  EXPECT_EQ(value, "value");
  EXPECT_TRUE((*store)->Get("torn", &value).IsNotFound());
  ASSERT_TRUE((*store)->Close().ok());
}

// ------------------------------------------------------------ Lethe vs LSM

TEST(LetheContrastTest, NamesAndConfigDiffer) {
  ScopedTempDir dir;
  auto lsm = OpenStore({.engine = "lsm", .dir = dir.path() + "/a"});
  auto lethe = OpenStore({.engine = "lethe", .dir = dir.path() + "/b"});
  ASSERT_TRUE(lsm.ok() && lethe.ok());
  EXPECT_EQ((*lsm)->name(), "lsm");
  EXPECT_EQ((*lethe)->name(), "lethe");
  EXPECT_TRUE((*lsm)->supports_merge());
  EXPECT_TRUE((*lethe)->supports_merge());
  ASSERT_TRUE((*lsm)->Close().ok());
  ASSERT_TRUE((*lethe)->Close().ok());
}

// ------------------------------------------------------------- concurrency

TEST(ConcurrencyEdgeTest, MixedOpsFourThreads) {
  ScopedTempDir dir;
  auto store = OpenStore({.engine = "lsm", .dir = dir.path() + "/db"});
  ASSERT_TRUE(store.ok());
  auto worker = [&](int id) {
    for (int i = 0; i < 1500; ++i) {
      std::string key = "t" + std::to_string(id) + "-" + std::to_string(i % 50);
      switch (i % 4) {
        case 0:
          ASSERT_TRUE(store->get()->Put(key, "v").ok());
          break;
        case 1: {
          std::string value;
          Status s = store->get()->Get(key, &value);
          ASSERT_TRUE(s.ok() || s.IsNotFound());
          break;
        }
        case 2:
          ASSERT_TRUE(store->get()->Merge(key, "+").ok());
          break;
        case 3:
          ASSERT_TRUE(store->get()->Delete(key).ok());
          break;
      }
    }
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back(worker, t);
  }
  for (std::thread& t : threads) {
    t.join();
  }
  ASSERT_TRUE((*store)->Close().ok());
}

}  // namespace
}  // namespace gadget
