// Tests for the distribution generators: range correctness, determinism,
// skew properties, and factory behaviour. Parameterized sweeps check every
// distribution family against shared invariants.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/distgen/arrival.h"
#include "src/distgen/distribution.h"

namespace gadget {
namespace {

// ---------------------------------------------------- shared property sweep

struct DistCase {
  const char* name;
  uint64_t domain;
};

class DistributionPropertyTest : public ::testing::TestWithParam<DistCase> {};

TEST_P(DistributionPropertyTest, StaysInDomain) {
  const DistCase& c = GetParam();
  auto dist = CreateDistribution(c.name, c.domain, /*seed=*/1234);
  ASSERT_TRUE(dist.ok()) << c.name;
  for (int i = 0; i < 20000; ++i) {
    EXPECT_LT((*dist)->Next(), c.domain) << c.name;
  }
}

TEST_P(DistributionPropertyTest, DeterministicGivenSeed) {
  const DistCase& c = GetParam();
  auto a = CreateDistribution(c.name, c.domain, 77);
  auto b = CreateDistribution(c.name, c.domain, 77);
  ASSERT_TRUE(a.ok() && b.ok());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ((*a)->Next(), (*b)->Next()) << c.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllDistributions, DistributionPropertyTest,
    ::testing::Values(DistCase{"uniform", 1000}, DistCase{"uniform", 1},
                      DistCase{"zipfian", 1000}, DistCase{"zipfian", 10},
                      DistCase{"scrambled_zipfian", 1000}, DistCase{"hotspot", 1000},
                      DistCase{"sequential", 64}, DistCase{"exponential", 1000},
                      DistCase{"latest", 1000}),
    [](const auto& spec) {
      return std::string(spec.param.name) + "_" + std::to_string(spec.param.domain);
    });

// ------------------------------------------------------- per-family checks

TEST(UniformTest, CoversDomainEvenly) {
  UniformDistribution dist(10, 5);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 100000; ++i) {
    ++counts[dist.Next()];
  }
  EXPECT_EQ(counts.size(), 10u);
  for (const auto& [v, n] : counts) {
    EXPECT_NEAR(n, 10000, 600) << "value " << v;
  }
}

TEST(ZipfianTest, HeadIsHot) {
  ZipfianDistribution dist(1000, 5);
  std::map<uint64_t, int> counts;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    ++counts[dist.Next()];
  }
  // With theta=0.99, item 0 gets a large share and the top-10 dominate.
  EXPECT_GT(counts[0], n / 20);
  int top10 = 0;
  for (uint64_t v = 0; v < 10; ++v) {
    top10 += counts[v];
  }
  EXPECT_GT(top10, n / 3);
}

TEST(ZipfianTest, GrowDomainKeepsSampling) {
  ZipfianDistribution dist(100, 5);
  dist.GrowDomain(200);
  EXPECT_EQ(dist.domain(), 200u);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(dist.Next(), 200u);
  }
}

TEST(ScrambledZipfianTest, SpreadsHotKeys) {
  ScrambledZipfianDistribution dist(1000, 5);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 100000; ++i) {
    ++counts[dist.Next()];
  }
  // The two hottest keys should NOT be adjacent (scrambling spreads them).
  std::vector<std::pair<int, uint64_t>> by_count;
  for (const auto& [v, n] : counts) {
    by_count.push_back({n, v});
  }
  std::sort(by_count.rbegin(), by_count.rend());
  uint64_t hot0 = by_count[0].second, hot1 = by_count[1].second;
  EXPECT_GT(hot0 > hot1 ? hot0 - hot1 : hot1 - hot0, 1u);
}

TEST(HotspotTest, HotSetGetsHotFraction) {
  HotspotDistribution dist(1000, 5, 0.2, 0.8);
  int hot = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (dist.Next() < 200) {
      ++hot;
    }
  }
  EXPECT_NEAR(static_cast<double>(hot) / n, 0.8, 0.02);
}

TEST(SequentialTest, CyclesInOrder) {
  SequentialDistribution dist(5);
  std::vector<uint64_t> got;
  for (int i = 0; i < 12; ++i) {
    got.push_back(dist.Next());
  }
  EXPECT_EQ(got, (std::vector<uint64_t>{0, 1, 2, 3, 4, 0, 1, 2, 3, 4, 0, 1}));
}

TEST(ExponentialTest, MassConcentratesLow) {
  ExponentialDistribution dist(1000, 5);
  int low = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (dist.Next() < 500) {
      ++low;
    }
  }
  EXPECT_GT(static_cast<double>(low) / n, 0.7);
}

TEST(LatestTest, SkewsTowardFrontier) {
  LatestDistribution dist(1000, 5);
  int recent = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (dist.Next() >= 990) {
      ++recent;
    }
  }
  // Last 1% of the keyspace should receive far more than 1% of requests.
  EXPECT_GT(static_cast<double>(recent) / n, 0.2);
}

TEST(LatestTest, TracksGrowingFrontier) {
  LatestDistribution dist(100, 5);
  dist.GrowDomain(10000);
  int beyond_old = 0;
  for (int i = 0; i < 1000; ++i) {
    if (dist.Next() >= 100) {
      ++beyond_old;
    }
  }
  EXPECT_GT(beyond_old, 900);
}

TEST(ConstantTest, AlwaysSameValue) {
  ConstantDistribution dist(42);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(dist.Next(), 42u);
  }
}

TEST(EcdfTest, InterpolatesBetweenPoints) {
  auto dist = EcdfDistribution::Create({{0, 0.0}, {100, 0.5}, {1000, 1.0}}, 5);
  ASSERT_TRUE(dist.ok());
  int low = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    uint64_t v = (*dist)->Next();
    ASSERT_LE(v, 1000u);
    if (v <= 100) {
      ++low;
    }
  }
  EXPECT_NEAR(static_cast<double>(low) / n, 0.5, 0.02);
}

TEST(EcdfTest, RejectsBadInput) {
  EXPECT_FALSE(EcdfDistribution::Create({}, 5).ok());
  EXPECT_FALSE(EcdfDistribution::Create({{0, 0.5}, {10, 0.4}}, 5).ok());   // decreasing prob
  EXPECT_FALSE(EcdfDistribution::Create({{0, 0.1}, {10, 0.9}}, 5).ok());   // doesn't reach 1
}

TEST(FactoryTest, RejectsUnknownName) {
  EXPECT_FALSE(CreateDistribution("gaussian-ish", 10, 1).ok());
}

// ----------------------------------------------------------------- arrivals

TEST(ArrivalTest, ConstantRate) {
  ConstantArrival arrivals(10);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(arrivals.NextGap(), 10u);
  }
}

TEST(ArrivalTest, PoissonMeanGap) {
  PoissonArrival arrivals(100.0, 7);  // 100 events/s -> mean gap 10ms
  uint64_t total = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    total += arrivals.NextGap();
  }
  EXPECT_NEAR(static_cast<double>(total) / n, 10.0, 0.5);
}

TEST(ArrivalTest, BurstyAlternatesRates) {
  BurstyArrival arrivals(1000.0, 10.0, 5000.0, 5000.0, 7);
  // Long-run average between busy gap (1ms) and idle gap (100ms).
  uint64_t total = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    total += arrivals.NextGap();
  }
  double mean = static_cast<double>(total) / n;
  EXPECT_GT(mean, 1.0);
  EXPECT_LT(mean, 100.0);
}

TEST(ArrivalTest, FactoryValidation) {
  EXPECT_FALSE(CreateArrivalProcess("poisson", -1.0, 1).ok());
  EXPECT_FALSE(CreateArrivalProcess("weibull", 10.0, 1).ok());
  EXPECT_TRUE(CreateArrivalProcess("bursty", 10.0, 1).ok());
}

}  // namespace
}  // namespace gadget
