// Stress and failure-injection tests for the LSM engine: simulated crashes
// (recovery from a mid-run directory snapshot), merge-stack survival across
// deep compaction, bloom parameter sweeps, and write stalls.
#include <gtest/gtest.h>

#include <filesystem>
#include <map>

#include "src/common/file_util.h"
#include "src/common/rng.h"
#include "src/stores/lsm/bloom.h"
#include "src/stores/lsm/lsm_store.h"

namespace gadget {
namespace {

namespace fs = std::filesystem;

LsmOptions TinyOptions() {
  LsmOptions opts;
  opts.write_buffer_size = 32 * 1024;
  opts.max_bytes_level_base = 128 * 1024;
  opts.target_file_size = 32 * 1024;
  opts.l0_compaction_trigger = 2;
  return opts;
}

// Copies the live database directory — the moral equivalent of the state a
// crash would leave behind (manifest + SSTs are synced; WAL tail may be
// partially flushed).
void SnapshotDir(const std::string& from, const std::string& to) {
  fs::create_directories(to);
  for (const auto& entry : fs::directory_iterator(from)) {
    std::error_code ec;
    fs::copy_file(entry.path(), fs::path(to) / entry.path().filename(),
                  fs::copy_options::overwrite_existing, ec);
  }
}

TEST(LsmCrashTest, RecoversFromMidRunSnapshot) {
  ScopedTempDir dir;
  const std::string live = dir.path() + "/live";
  const std::string snap = dir.path() + "/snapshot";
  std::map<std::string, std::string> expected;
  {
    auto store = LsmStore::Open(live, TinyOptions());
    ASSERT_TRUE(store.ok());
    Pcg32 rng(11);
    for (int i = 0; i < 4000; ++i) {
      std::string key = "k" + std::to_string(rng.NextBounded(400));
      std::string value = "v" + std::to_string(i);
      ASSERT_TRUE((*store)->Put(key, value).ok());
      expected[key] = value;
    }
    // Crash point: snapshot while the store is live (no Close, no final
    // memtable flush — the snapshot sees SSTs + the current WAL).
    ASSERT_TRUE((*store)->Flush().ok());  // make WAL/memtable boundary clean
    for (int i = 0; i < 50; ++i) {
      std::string key = "post" + std::to_string(i);
      ASSERT_TRUE((*store)->Put(key, "wal-only").ok());
      expected[key] = "wal-only";
    }
    // Concurrent background compaction may delete files between the manifest
    // copy and the data copy; retry until a consistent snapshot lands (a
    // crash-consistent snapshot is atomic, which a file-by-file copy of a
    // live directory is not).
    for (int attempt = 0; attempt < 10; ++attempt) {
      // status intentionally ignored: a missing snapshot dir on the first
      // attempt is expected.
      (void)RemoveDirRecursively(snap);
      SnapshotDir(live, snap);
      auto check = LsmStore::Open(snap, TinyOptions());
      if (check.ok()) {
        ASSERT_TRUE((*check)->Close().ok());
        break;
      }
    }
    ASSERT_TRUE((*store)->Close().ok());
  }
  // Recover from the snapshot: SST data plus WAL-replayed tail. (Recovery
  // flushed the replayed WAL and removed it, so this second open is clean.)
  auto store = LsmStore::Open(snap, TinyOptions());
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  int missing = 0;
  for (const auto& [key, value] : expected) {
    std::string got;
    Status s = (*store)->Get(key, &got);
    if (!s.ok() || got != value) {
      ++missing;
    }
  }
  EXPECT_EQ(missing, 0);
  ASSERT_TRUE((*store)->Close().ok());
}

TEST(LsmStressTest, MergeStacksSurviveDeepCompaction) {
  ScopedTempDir dir;
  auto store = LsmStore::Open(dir.path(), TinyOptions());
  ASSERT_TRUE(store.ok());
  // Many keys accumulate operands across multiple flush/compaction cycles
  // without ever receiving a base value.
  const int kKeys = 50;
  const int kRounds = 400;
  for (int round = 0; round < kRounds; ++round) {
    for (int k = 0; k < kKeys; ++k) {
      ASSERT_TRUE(
          (*store)->Merge("acc" + std::to_string(k), "[" + std::to_string(round) + "]").ok());
    }
    if (round % 10 == 0) {
      // Churn forces flushes between operand batches.
      ASSERT_TRUE((*store)->Put("churn", std::string(4000, 'c')).ok());
    }
  }
  for (int k = 0; k < kKeys; ++k) {
    std::string value;
    ASSERT_TRUE((*store)->Get("acc" + std::to_string(k), &value).ok()) << k;
    // All operands in order: starts with round 0, ends with the last round.
    EXPECT_TRUE(value.starts_with("[0]")) << value.substr(0, 20);
    EXPECT_TRUE(value.ends_with("[" + std::to_string(kRounds - 1) + "]"));
    // Operand count = number of '[' characters.
    EXPECT_EQ(static_cast<int>(std::count(value.begin(), value.end(), '[')), kRounds);
  }
  auto* lsm = static_cast<LsmStore*>(store->get());
  EXPECT_GT(lsm->TotalSstBytes(), 0u);
  ASSERT_TRUE((*store)->Close().ok());
}

TEST(LsmStressTest, DeleteEverythingThenReuseKeys) {
  ScopedTempDir dir;
  auto store = LsmStore::Open(dir.path(), TinyOptions());
  ASSERT_TRUE(store.ok());
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 1000; ++i) {
      ASSERT_TRUE(
          (*store)->Put("k" + std::to_string(i), "r" + std::to_string(round)).ok());
    }
    for (int i = 0; i < 1000; ++i) {
      ASSERT_TRUE((*store)->Delete("k" + std::to_string(i)).ok());
    }
  }
  for (int i = 0; i < 1000; i += 37) {
    std::string value;
    EXPECT_TRUE((*store)->Get("k" + std::to_string(i), &value).IsNotFound()) << i;
  }
  // Resurrect a few keys after the mass delete.
  ASSERT_TRUE((*store)->Put("k5", "alive").ok());
  std::string value;
  ASSERT_TRUE((*store)->Get("k5", &value).ok());
  EXPECT_EQ(value, "alive");
  ASSERT_TRUE((*store)->Close().ok());
}

TEST(LsmStressTest, ReopenLoopPreservesData) {
  ScopedTempDir dir;
  std::map<std::string, std::string> expected;
  Pcg32 rng(13);
  for (int generation = 0; generation < 5; ++generation) {
    auto store = LsmStore::Open(dir.path(), TinyOptions());
    ASSERT_TRUE(store.ok()) << generation;
    for (int i = 0; i < 800; ++i) {
      std::string key = "g" + std::to_string(rng.NextBounded(300));
      if (rng.NextBounded(10) < 8) {
        std::string value = "gen" + std::to_string(generation) + "-" + std::to_string(i);
        ASSERT_TRUE((*store)->Put(key, value).ok());
        expected[key] = value;
      } else {
        ASSERT_TRUE((*store)->Delete(key).ok());
        expected.erase(key);
      }
    }
    for (const auto& [key, value] : expected) {
      std::string got;
      ASSERT_TRUE((*store)->Get(key, &got).ok()) << key << " gen " << generation;
      ASSERT_EQ(got, value);
    }
    ASSERT_TRUE((*store)->Close().ok());
  }
}

// Parameterized bloom-filter sweep: false-positive rate must fall as bits
// per key grow.
class BloomSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(BloomSweepTest, FprWithinBudget) {
  const int bits_per_key = GetParam();
  BloomFilterBuilder builder(bits_per_key);
  for (int i = 0; i < 5000; ++i) {
    builder.AddKey("present" + std::to_string(i));
  }
  std::string filter = builder.Finish();
  int fp = 0;
  const int kProbes = 20000;
  for (int i = 0; i < kProbes; ++i) {
    if (BloomFilterMayContain(filter, "absent" + std::to_string(i))) {
      ++fp;
    }
  }
  double fpr = static_cast<double>(fp) / kProbes;
  // Theoretical FPR ~ 0.6185^bits; allow 3x headroom.
  double budget = 3.0 * std::pow(0.6185, bits_per_key);
  EXPECT_LT(fpr, std::max(budget, 0.002)) << "bits=" << bits_per_key;
}

INSTANTIATE_TEST_SUITE_P(BitsPerKey, BloomSweepTest, ::testing::Values(4, 8, 10, 14, 20),
                         [](const auto& spec) {
                           return "bits" + std::to_string(spec.param);
                         });

// Crash with a non-empty immutable queue: several memtables were sealed
// (each owning a retired WAL generation) but none flushed. Recovery must
// replay all live generations oldest-first so later overwrites win.
TEST(LsmCrashTest, RecoversImmutableQueueFromWalGenerations) {
  ScopedTempDir dir;
  const std::string live = dir.path() + "/live";
  const std::string snap = dir.path() + "/snapshot";
  LsmOptions opts = TinyOptions();
  opts.write_buffer_size = 8 * 1024;
  opts.max_immutable_memtables = 4;
  std::map<std::string, std::string> expected;
  {
    auto store = LsmStore::Open(live, opts);
    ASSERT_TRUE(store.ok());
    auto* lsm = static_cast<LsmStore*>(store->get());
    lsm->TEST_PauseFlusher(true);
    // Three generations of writes to the SAME keys: every rotation seals a
    // memtable whose WAL generation recovery must replay in order, or stale
    // generations would shadow the newer values.
    for (int generation = 0; generation < 3; ++generation) {
      for (int i = 0; i < 40; ++i) {
        std::string key = "k" + std::to_string(i);
        std::string value = "gen" + std::to_string(generation) + "-" + std::to_string(i);
        ASSERT_TRUE((*store)->Put(key, value).ok());
        expected[key] = value;
      }
      const std::string pad(512, 'p');
      for (int i = 0; lsm->TEST_NumImmutables() < static_cast<size_t>(generation + 1); ++i) {
        ASSERT_LT(i, 10'000);
        std::string key = "pad" + std::to_string(generation) + "-" + std::to_string(i);
        ASSERT_TRUE((*store)->Put(key, pad).ok());
        expected[key] = pad;
      }
    }
    // A few records that only exist in the active memtable's WAL.
    for (int i = 0; i < 10; ++i) {
      std::string key = "active" + std::to_string(i);
      ASSERT_TRUE((*store)->Put(key, "tail").ok());
      expected[key] = "tail";
    }
    ASSERT_EQ(lsm->TEST_NumImmutables(), 3u);
    ASSERT_EQ(lsm->NumFilesAtLevel(0), 0);  // nothing flushed: WALs only
    SnapshotDir(live, snap);
    lsm->TEST_PauseFlusher(false);
    ASSERT_TRUE((*store)->Close().ok());
  }
  auto store = LsmStore::Open(snap, opts);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  for (const auto& [key, value] : expected) {
    std::string got;
    ASSERT_TRUE((*store)->Get(key, &got).ok()) << key;
    EXPECT_EQ(got, value) << key;
  }
  ASSERT_TRUE((*store)->Close().ok());
}

// Same crash shape plus a torn tail on the NEWEST (active) WAL generation:
// the sealed generations must replay completely; only the torn record of the
// active generation may be lost.
TEST(LsmCrashTest, TornActiveWalTailLosesOnlyTheTail) {
  ScopedTempDir dir;
  const std::string live = dir.path() + "/live";
  const std::string snap = dir.path() + "/snapshot";
  LsmOptions opts = TinyOptions();
  opts.write_buffer_size = 8 * 1024;
  opts.max_immutable_memtables = 4;
  std::map<std::string, std::string> sealed_expected;
  {
    auto store = LsmStore::Open(live, opts);
    ASSERT_TRUE(store.ok());
    auto* lsm = static_cast<LsmStore*>(store->get());
    lsm->TEST_PauseFlusher(true);
    const std::string pad(512, 'p');
    for (int generation = 0; generation < 2; ++generation) {
      for (int i = 0; lsm->TEST_NumImmutables() < static_cast<size_t>(generation + 1); ++i) {
        ASSERT_LT(i, 10'000);
        std::string key = "g" + std::to_string(generation) + "-" + std::to_string(i);
        ASSERT_TRUE((*store)->Put(key, pad).ok());
        sealed_expected[key] = pad;
      }
    }
    ASSERT_TRUE((*store)->Put("active-key", "may be torn").ok());
    SnapshotDir(live, snap);
    lsm->TEST_PauseFlusher(false);
    ASSERT_TRUE((*store)->Close().ok());
  }
  // Tear the newest WAL in the snapshot (highest generation number).
  fs::path newest;
  uint64_t newest_number = 0;
  for (const auto& entry : fs::directory_iterator(snap)) {
    const std::string name = entry.path().filename().string();
    if (name.starts_with("wal-") && name.ends_with(".log")) {
      uint64_t n = std::stoull(name.substr(4));
      if (n >= newest_number) {
        newest_number = n;
        newest = entry.path();
      }
    }
  }
  ASSERT_FALSE(newest.empty());
  const auto size = fs::file_size(newest);
  ASSERT_GT(size, 4u);
  fs::resize_file(newest, size - 3);  // torn mid-record
  auto store = LsmStore::Open(snap, opts);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  for (const auto& [key, value] : sealed_expected) {
    std::string got;
    ASSERT_TRUE((*store)->Get(key, &got).ok()) << key;
    EXPECT_EQ(got, value) << key;
  }
  // The torn record itself is allowed to be gone, but a lookup must still be
  // well-formed (found with the right value, or cleanly NotFound).
  std::string got;
  Status s = (*store)->Get("active-key", &got);
  EXPECT_TRUE(s.ok() || s.IsNotFound()) << s.ToString();
  if (s.ok()) {
    EXPECT_EQ(got, "may be torn");
  }
  ASSERT_TRUE((*store)->Close().ok());
}

// Crash window between manifest install and retired-WAL unlink: the
// manifest already says the old generation is flushed, but its file is still
// on disk (the unlink, or the directory sync making it durable, never
// happened). Recovery's floor rule must delete the stale log instead of
// replaying it — replaying would let its old records shadow newer flushed
// values.
TEST(LsmCrashTest, StaleWalLeftByCrashedUnlinkIsNotReplayed) {
  ScopedTempDir dir;
  const std::string live = dir.path() + "/live";
  const std::string pre = dir.path() + "/pre";
  const std::string snap = dir.path() + "/snapshot";
  LsmOptions opts = TinyOptions();
  opts.l0_compaction_trigger = 100;  // no compaction: snapshots stay stable
  {
    auto store = LsmStore::Open(live, opts);
    ASSERT_TRUE(store.ok());
    for (int i = 0; i < 60; ++i) {
      ASSERT_TRUE((*store)->Put("k" + std::to_string(i), "stale").ok());
    }
    SnapshotDir(live, pre);  // captures the WAL holding the "stale" records
    ASSERT_TRUE((*store)->Flush().ok());
    for (int i = 0; i < 60; ++i) {
      ASSERT_TRUE((*store)->Put("k" + std::to_string(i), "fresh").ok());
    }
    ASSERT_TRUE((*store)->Flush().ok());  // "fresh" now in SSTables; old WALs retired
    SnapshotDir(live, snap);
    ASSERT_TRUE((*store)->Close().ok());
  }
  // Reconstruct the crash state: the post-flush image plus the long-retired
  // WAL file that the crash prevented from being unlinked durably.
  std::string stale_wal;
  uint64_t stale_number = 0;
  for (const auto& entry : fs::directory_iterator(pre)) {
    const std::string name = entry.path().filename().string();
    if (name.starts_with("wal-") && name.ends_with(".log")) {
      stale_wal = name;
      stale_number = std::stoull(name.substr(4));
    }
  }
  ASSERT_FALSE(stale_wal.empty());
  ASSERT_FALSE(fs::exists(fs::path(snap) / stale_wal));  // retired before the snapshot
  fs::copy_file(fs::path(pre) / stale_wal, fs::path(snap) / stale_wal);

  auto store = LsmStore::Open(snap, opts);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  for (int i = 0; i < 60; ++i) {
    std::string got;
    ASSERT_TRUE((*store)->Get("k" + std::to_string(i), &got).ok()) << i;
    EXPECT_EQ(got, "fresh") << "stale wal-" << stale_number << " was replayed";
  }
  // Recovery garbage-collected the below-floor log.
  EXPECT_FALSE(fs::exists(fs::path(snap) / stale_wal));
  ASSERT_TRUE((*store)->Close().ok());
}

// Crash window between SSTable creation and manifest install: the new table
// is on disk but no manifest references it. Recovery must come up cleanly
// from the manifest it has, ignoring the orphan — losing only un-acked work.
TEST(LsmCrashTest, OrphanSstableFromCrashedFlushIsIgnored) {
  ScopedTempDir dir;
  const std::string live = dir.path() + "/live";
  const std::string snap = dir.path() + "/snapshot";
  LsmOptions opts = TinyOptions();
  opts.l0_compaction_trigger = 100;
  std::map<std::string, std::string> expected;
  {
    auto store = LsmStore::Open(live, opts);
    ASSERT_TRUE(store.ok());
    for (int i = 0; i < 200; ++i) {
      std::string key = "k" + std::to_string(i);
      ASSERT_TRUE((*store)->Put(key, "v" + std::to_string(i)).ok());
      expected[key] = "v" + std::to_string(i);
    }
    ASSERT_TRUE((*store)->Flush().ok());
    SnapshotDir(live, snap);
    ASSERT_TRUE((*store)->Close().ok());
  }
  // An SSTable written (even garbage) but never installed in the manifest.
  ASSERT_TRUE(WriteStringToFile(snap + "/999999.sst", "torn flush leftovers").ok());
  auto store = LsmStore::Open(snap, opts);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  for (const auto& [key, value] : expected) {
    std::string got;
    ASSERT_TRUE((*store)->Get(key, &got).ok()) << key;
    EXPECT_EQ(got, value);
  }
  ASSERT_TRUE((*store)->Close().ok());
}

// The inverse ordering violation: a manifest that references an SSTable
// whose data never became durable. The durability contract (DESIGN.md)
// prevents this state by syncing the table and its directory entry before
// the manifest installs; if it ever appears, recovery must fail loudly
// rather than open a store with silent holes.
TEST(LsmCrashTest, ManifestReferencingMissingSstableFailsLoudly) {
  ScopedTempDir dir;
  const std::string live = dir.path() + "/live";
  const std::string snap = dir.path() + "/snapshot";
  LsmOptions opts = TinyOptions();
  opts.l0_compaction_trigger = 100;
  {
    auto store = LsmStore::Open(live, opts);
    ASSERT_TRUE(store.ok());
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE((*store)->Put("k" + std::to_string(i), "v").ok());
    }
    ASSERT_TRUE((*store)->Flush().ok());
    SnapshotDir(live, snap);
    ASSERT_TRUE((*store)->Close().ok());
  }
  bool removed = false;
  for (const auto& entry : fs::directory_iterator(snap)) {
    if (entry.path().extension() == ".sst") {
      fs::remove(entry.path());
      removed = true;
    }
  }
  ASSERT_TRUE(removed);
  auto store = LsmStore::Open(snap, opts);
  EXPECT_FALSE(store.ok());
}

TEST(LsmBackpressureTest, HeavyWritesDoNotWedge) {
  ScopedTempDir dir;
  LsmOptions opts = TinyOptions();
  opts.l0_stall_limit = 4;  // aggressive stalls
  auto store = LsmStore::Open(dir.path(), opts);
  ASSERT_TRUE(store.ok());
  std::string value(2'000, 'x');
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE((*store)->Put("key" + std::to_string(i), value).ok()) << i;
  }
  StoreStats stats = (*store)->stats();
  EXPECT_GT(stats.compactions, 0u);  // background thread kept up
  ASSERT_TRUE((*store)->Close().ok());
}

}  // namespace
}  // namespace gadget
