// Observability layer tests: timeline interval math, per-engine StoreStats
// deltas, histogram JSON round-trips, concurrent timeline merges, and the
// report_check regression verdicts (DESIGN.md §5d).
#include "src/gadget/report.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/file_util.h"
#include "src/common/histogram.h"
#include "src/common/json.h"
#include "src/gadget/evaluator.h"
#include "src/gadget/multi.h"
#include "src/stores/kvstore.h"
#include "src/streams/state_access.h"

namespace gadget {
namespace {

// ops alternating put/get over a small key space — touches every engine's
// read and write path and produces a deterministic op mix.
std::vector<StateAccess> MakeTrace(uint64_t ops, uint64_t keys = 64) {
  std::vector<StateAccess> trace;
  trace.reserve(ops);
  for (uint64_t i = 0; i < ops; ++i) {
    StateAccess a;
    a.key.hi = 7;
    a.key.lo = i % keys;
    a.op = (i % 2 == 0) ? OpType::kPut : OpType::kGet;
    a.value_size = 32;
    trace.push_back(a);
  }
  return trace;
}

StatusOr<std::unique_ptr<KVStore>> OpenEngine(const std::string& engine,
                                              const ScopedTempDir& dir) {
  StoreOptions opts;
  opts.engine = engine;
  opts.dir = dir.path() + "/" + engine;
  return OpenStore(opts);
}

// --- timeline interval math -------------------------------------------------

TEST(TimelineTest, ExactIntervals) {
  ScopedTempDir dir;
  auto store = OpenEngine("mem", dir);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ReplayOptions opts;
  opts.timeline_interval_ops = 100;
  auto result = ReplayTrace(MakeTrace(1000), store->get(), opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->timeline.size(), 10u);
  uint64_t total = 0;
  double prev_end = 0;
  for (size_t i = 0; i < result->timeline.size(); ++i) {
    const TimelineSample& s = result->timeline[i];
    EXPECT_EQ(s.index, i);
    EXPECT_EQ(s.ops, 100u);  // 1000 % 100 == 0: every interval is exact
    EXPECT_GE(s.start_seconds, prev_end - 1e-12);
    EXPECT_GE(s.end_seconds, s.start_seconds);
    prev_end = s.end_seconds;
    total += s.ops;
  }
  EXPECT_EQ(total, result->ops);
}

TEST(TimelineTest, RaggedFinalInterval) {
  ScopedTempDir dir;
  auto store = OpenEngine("mem", dir);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ReplayOptions opts;
  opts.timeline_interval_ops = 300;
  auto result = ReplayTrace(MakeTrace(1000), store->get(), opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // 1000 = 3 * 300 + 100: three full intervals plus the ragged tail.
  ASSERT_EQ(result->timeline.size(), 4u);
  EXPECT_EQ(result->timeline[0].ops, 300u);
  EXPECT_EQ(result->timeline[1].ops, 300u);
  EXPECT_EQ(result->timeline[2].ops, 300u);
  EXPECT_EQ(result->timeline[3].ops, 100u);
}

TEST(TimelineTest, DisabledByDefault) {
  ScopedTempDir dir;
  auto store = OpenEngine("mem", dir);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  auto result = ReplayTrace(MakeTrace(500), store->get(), ReplayOptions{});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->timeline.empty());
}

TEST(TimelineTest, BatchedIntervalsCoverEveryOp) {
  ScopedTempDir dir;
  auto store = OpenEngine("lsm", dir);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ReplayOptions opts;
  opts.batch_size = 32;  // batches may overshoot a boundary by up to 31 ops
  opts.timeline_interval_ops = 100;
  auto result = ReplayTrace(MakeTrace(1000), store->get(), opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_GE(result->timeline.size(), 2u);
  uint64_t total = 0;
  for (const TimelineSample& s : result->timeline) {
    EXPECT_GT(s.ops, 0u);
    total += s.ops;
  }
  EXPECT_EQ(total, result->ops);
}

// --- StoreStats deltas per engine ---------------------------------------------

TEST(TimelineTest, StatsDeltasSumToFinalStats) {
  for (const char* engine : {"mem", "lsm", "lethe", "btree", "faster"}) {
    SCOPED_TRACE(engine);
    ScopedTempDir dir;
    auto store = OpenEngine(engine, dir);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    ReplayOptions opts;
    opts.timeline_interval_ops = 250;
    auto result = ReplayTrace(MakeTrace(1000), store->get(), opts);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_EQ(result->timeline.size(), 4u);
    uint64_t gets = 0;
    uint64_t puts = 0;
    uint64_t wal_bytes = 0;
    for (const TimelineSample& s : result->timeline) {
      gets += s.stats_delta.gets;
      puts += s.stats_delta.puts;
      wal_bytes += s.stats_delta.wal_bytes;
    }
    // Interval deltas partition the replay's operations exactly.
    StoreStats final_stats = (*store)->stats();
    EXPECT_EQ(gets, final_stats.gets);
    EXPECT_EQ(puts, final_stats.puts);
    EXPECT_EQ(gets, 500u);
    EXPECT_EQ(puts, 500u);
    // Durability-logging engines must surface WAL traffic.
    if (std::string(engine) != "mem" && std::string(engine) != "btree") {
      EXPECT_GT(wal_bytes, 0u);
    }
    ASSERT_TRUE((*store)->Close().ok());
  }
}

TEST(StoreStatsTest, DeltaSinceSaturatesAndKeepsGauges) {
  StoreStats later;
  later.gets = 100;
  later.wal_fsyncs = 7;
  later.level_files = {4, 2, 1};
  StoreStats earlier;
  earlier.gets = 40;
  earlier.wal_fsyncs = 9;  // racy snapshot: earlier > later must not wrap
  StoreStats delta = later.DeltaSince(earlier);
  EXPECT_EQ(delta.gets, 60u);
  EXPECT_EQ(delta.wal_fsyncs, 0u);
  EXPECT_EQ(delta.level_files, (std::vector<uint64_t>{4, 2, 1}));
}

TEST(StoreStatsTest, MergeMaxTakesWidestObservation) {
  StoreStats a;
  a.gets = 10;
  a.stall_micros = 5;
  a.level_files = {3};
  StoreStats b;
  b.gets = 4;
  b.stall_micros = 9;
  b.level_files = {1, 2};
  a.MergeMax(b);
  EXPECT_EQ(a.gets, 10u);
  EXPECT_EQ(a.stall_micros, 9u);
  EXPECT_EQ(a.level_files, (std::vector<uint64_t>{3, 2}));
}

// --- histogram JSON round-trip -----------------------------------------------

TEST(ReportJsonTest, HistogramRoundTripPreservesCountsAndPercentiles) {
  LatencyHistogram h;
  for (uint64_t v = 1; v <= 10'000; v += 7) {
    h.Record(v);
  }
  h.Record(1);
  h.Record(1'000'000'007);

  std::string text = HistogramToJson(h).Write();
  auto parsed = ParseJson(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  LatencyHistogram restored;
  ASSERT_TRUE(HistogramFromJson(*parsed, &restored));

  EXPECT_EQ(restored.count(), h.count());
  EXPECT_EQ(restored.min(), h.min());
  EXPECT_EQ(restored.max(), h.max());
  EXPECT_DOUBLE_EQ(restored.mean(), h.mean());
  for (double p : {1.0, 50.0, 90.0, 99.0, 99.9}) {
    EXPECT_EQ(restored.Percentile(p), h.Percentile(p)) << "p" << p;
  }
  // Bucket-wise equality: merging the restored histogram into an empty one
  // reproduces the original's serialized form byte-for-byte.
  LatencyHistogram merged;
  merged.Merge(restored);
  EXPECT_EQ(HistogramToJson(merged).Write(), text);
}

TEST(ReportJsonTest, EmptyHistogramRoundTrips) {
  LatencyHistogram h;
  auto parsed = ParseJson(HistogramToJson(h).Write());
  ASSERT_TRUE(parsed.ok());
  LatencyHistogram restored;
  ASSERT_TRUE(HistogramFromJson(*parsed, &restored));
  EXPECT_EQ(restored.count(), 0u);
  EXPECT_EQ(restored.min(), 0u);
}

TEST(ReportJsonTest, HistogramRejectsOutOfRangeBucket) {
  LatencyHistogram h;
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("count", 1);
  obj.Set("sum", 1.0);
  obj.Set("min", uint64_t{1});
  obj.Set("max", uint64_t{1});
  JsonValue buckets = JsonValue::MakeArray();
  JsonValue pair = JsonValue::MakeArray();
  pair.Append(uint64_t{1'000'000});  // far beyond any real bucket index
  pair.Append(uint64_t{1});
  buckets.Append(std::move(pair));
  obj.Set("buckets", std::move(buckets));
  EXPECT_FALSE(HistogramFromJson(obj, &h));
  EXPECT_EQ(h.count(), 0u);  // left reset, not half-restored
}

// --- concurrent-replay timeline merge ----------------------------------------

TEST(TimelineTest, ConcurrentReplayMergesSampleWise) {
  ScopedTempDir dir;
  auto store = OpenEngine("mem", dir);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  std::vector<std::vector<StateAccess>> traces = {MakeTrace(1000), MakeTrace(1000)};
  ReplayOptions opts;
  opts.timeline_interval_ops = 250;
  auto result = ReplayConcurrently(traces, store->get(), opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result->all_ok()) << result->FirstError().ToString();
  ReplayResult merged = result->Merged();
  // Both instances produce 4 exact intervals; the merge pairs them by index.
  ASSERT_EQ(merged.timeline.size(), 4u);
  uint64_t total = 0;
  for (const TimelineSample& s : merged.timeline) {
    EXPECT_EQ(s.ops, 500u);  // 250 from each instance
    total += s.ops;
  }
  EXPECT_EQ(total, merged.ops);
}

TEST(TimelineTest, MergeFromWidensBoundsAndMaxesStats) {
  TimelineSample a;
  a.index = 0;
  a.ops = 100;
  a.start_seconds = 0.10;
  a.end_seconds = 0.20;
  a.stats_delta.gets = 10;
  a.read_latency_ns.Record(1000);
  TimelineSample b;
  b.index = 0;
  b.ops = 50;
  b.start_seconds = 0.05;
  b.end_seconds = 0.15;
  b.stats_delta.gets = 30;
  b.read_latency_ns.Record(3000);
  a.MergeFrom(b);
  EXPECT_EQ(a.ops, 150u);
  EXPECT_DOUBLE_EQ(a.start_seconds, 0.05);
  EXPECT_DOUBLE_EQ(a.end_seconds, 0.20);
  EXPECT_DOUBLE_EQ(a.ops_per_sec, 150.0 / 0.15);
  EXPECT_EQ(a.stats_delta.gets, 30u);  // max, not sum: shared-store delta
  EXPECT_EQ(a.read_latency_ns.count(), 2u);
}

TEST(TimelineTest, ReplayResultMergeAppendsLongerTimeline) {
  ReplayResult a;
  a.timeline.resize(2);
  a.timeline[0].ops = 10;
  a.timeline[1].ops = 10;
  ReplayResult b;
  b.timeline.resize(3);
  b.timeline[0].ops = 5;
  b.timeline[1].ops = 5;
  b.timeline[2].ops = 5;
  a.MergeFrom(b);
  ASSERT_EQ(a.timeline.size(), 3u);
  EXPECT_EQ(a.timeline[0].ops, 15u);
  EXPECT_EQ(a.timeline[1].ops, 15u);
  EXPECT_EQ(a.timeline[2].ops, 5u);  // appended as-is
}

// --- report emission, validation, regression verdicts -------------------------

// A fully populated report document built from a real replay.
JsonValue MakeReportDoc() {
  ScopedTempDir dir;
  auto store = OpenEngine("mem", dir);
  EXPECT_TRUE(store.ok());
  ReplayOptions opts;
  opts.timeline_interval_ops = 200;
  auto result = ReplayTrace(MakeTrace(600), store->get(), opts);
  EXPECT_TRUE(result.ok());
  ReportMeta meta;
  meta.engine = "mem";
  meta.git = "test";
  meta.timestamp = CurrentTimestamp();
  meta.config = {{"store", "mem"}};
  return BuildReportJson(meta, *result, (*store)->stats());
}

// Deterministic degraded variants: derived from the SAME document so the
// verdict depends only on the injected regression, never on timing noise
// between two real replays.
JsonValue WithThroughputScaled(const JsonValue& doc, double scale) {
  JsonValue out = doc;
  JsonValue result = *out.Get("result");
  result.Set("throughput_ops_per_sec", result.GetDouble("throughput_ops_per_sec") * scale);
  out.Set("result", std::move(result));
  return out;
}

JsonValue WithLatencyInflated(const JsonValue& doc, uint64_t slow_sample_ns) {
  JsonValue out = doc;
  JsonValue result = *out.Get("result");
  LatencyHistogram h;
  EXPECT_TRUE(HistogramFromJson(*result.Get("latency_ns"), &h));
  for (int i = 0; i < 100'000; ++i) {  // dominate every percentile
    h.Record(slow_sample_ns);
  }
  result.Set("latency_ns", HistogramToJson(h));
  out.Set("result", std::move(result));
  return out;
}

TEST(ReportJsonTest, WriteParseValidateRoundTrip) {
  ScopedTempDir dir;
  const std::string path = dir.path() + "/report.json";
  {
    ScopedTempDir store_dir;
    auto store = OpenEngine("lsm", store_dir);
    ASSERT_TRUE(store.ok());
    ReplayOptions opts;
    opts.timeline_interval_ops = 100;
    auto result = ReplayTrace(MakeTrace(500), store->get(), opts);
    ASSERT_TRUE(result.ok());
    ReportMeta meta;
    meta.engine = "lsm";
    meta.timestamp = CurrentTimestamp();
    ASSERT_TRUE(WriteReportJson(path, meta, *result, (*store)->stats()).ok());
  }
  std::string text;
  ASSERT_TRUE(ReadFileToString(path, &text).ok());
  auto doc = ParseJson(text);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_TRUE(ValidateReportJson(*doc).ok()) << ValidateReportJson(*doc).ToString();
  EXPECT_EQ(doc->GetString("schema"), kReportSchema);
  EXPECT_EQ(doc->Get("result")->Get("timeline")->items().size(), 5u);
}

TEST(ReportJsonTest, ValidationCatchesMissingSections) {
  JsonValue doc = MakeReportDoc();
  EXPECT_TRUE(ValidateReportJson(doc).ok());

  JsonValue no_schema = doc;
  no_schema.Set("schema", "bogus/9");
  EXPECT_FALSE(ValidateReportJson(no_schema).ok());

  JsonValue no_result = JsonValue::MakeObject();
  no_result.Set("schema", kReportSchema);
  no_result.Set("meta", *doc.Get("meta"));
  no_result.Set("stats", *doc.Get("stats"));
  EXPECT_FALSE(ValidateReportJson(no_result).ok());

  EXPECT_FALSE(ValidateReportJson(JsonValue(std::string("not an object"))).ok());
}

TEST(ReportCheckTest, IdenticalReportsPass) {
  JsonValue doc = MakeReportDoc();
  auto check = CompareReportJson(doc, doc, 0.15);
  ASSERT_TRUE(check.ok()) << check.status().ToString();
  EXPECT_TRUE(check->passed);
  EXPECT_GT(check->compared, 0u);
  EXPECT_TRUE(check->failures.empty());
}

TEST(ReportCheckTest, ThroughputDropFails) {
  JsonValue baseline = MakeReportDoc();
  JsonValue slower = WithThroughputScaled(baseline, 0.5);
  auto check = CompareReportJson(baseline, slower, 0.15);
  ASSERT_TRUE(check.ok());
  EXPECT_FALSE(check->passed);
  ASSERT_FALSE(check->failures.empty());
  EXPECT_NE(check->failures[0].find("throughput"), std::string::npos);
  // The same 50% drop passes under a 60% budget.
  auto lenient = CompareReportJson(baseline, slower, 0.60);
  ASSERT_TRUE(lenient.ok());
  EXPECT_TRUE(lenient->passed);
}

TEST(ReportCheckTest, LatencyInflationFails) {
  JsonValue baseline = MakeReportDoc();
  JsonValue slower = WithLatencyInflated(baseline, 50'000'000);
  auto check = CompareReportJson(baseline, slower, 0.15);
  ASSERT_TRUE(check.ok());
  EXPECT_FALSE(check->passed);
  ASSERT_FALSE(check->failures.empty());
  EXPECT_NE(check->failures[0].find("latency"), std::string::npos);
}

TEST(ReportCheckTest, SchemaMismatchIsAnError) {
  JsonValue report = MakeReportDoc();
  JsonValue bench = JsonValue::MakeObject();
  bench.Set("schema", kBenchSchema);
  bench.Set("name", "x");
  bench.Set("runs", JsonValue::MakeArray());
  ASSERT_TRUE(ValidateReportJson(bench).ok());
  EXPECT_FALSE(CompareReportJson(report, bench, 0.15).ok());
}

}  // namespace
}  // namespace gadget
