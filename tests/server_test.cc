// Tests for the store service (src/server/): wire framing round-trips and
// rejects torn/oversized/garbage input cleanly, the consistent-hash router is
// deterministic and moves little keyspace on growth, shard-set stats merge as
// a fleet, a live server handles the full request vocabulary plus pipelined
// out-of-order completion, and — the end-to-end gate — a 4-shard loopback
// loadgen replay converges to exactly the state an in-process oracle replay
// produces, with zero lost or duplicated operations.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/common/coding.h"
#include "src/common/config.h"
#include "src/common/file_util.h"
#include "src/common/json.h"
#include "src/gadget/evaluator.h"
#include "src/gadget/harness.h"
#include "src/server/client.h"
#include "src/server/loadgen.h"
#include "src/server/router.h"
#include "src/server/server.h"
#include "src/server/wire.h"
#include "src/stores/kvstore.h"

namespace gadget {
namespace wire {
namespace {

// ------------------------------------------------------------------- wire

TEST(WireTest, RequestRoundTrip) {
  std::string buf;
  AppendGetRequest(&buf, 7, "key-a");
  AppendPutRequest(&buf, 8, "key-b", "value-b");
  AppendMultiGetRequest(&buf, 9, {"k1", "k2", "k3"});
  WriteBatch wb;
  wb.Put("p", "1");
  wb.Merge("m", "2");
  wb.Delete("d");
  AppendWriteBatchRequest(&buf, 10, wb);
  AppendPingRequest(&buf, 11);

  std::string_view rest = buf;
  auto next = [&](Request* req) {
    FrameView frame;
    size_t consumed = 0;
    std::string error;
    ASSERT_EQ(ExtractFrame(rest, &frame, &consumed, &error), FrameStatus::kOk) << error;
    ASSERT_TRUE(ParseRequest(frame, req).ok());
    rest = rest.substr(consumed);
  };
  Request req;
  next(&req);
  EXPECT_EQ(req.type, MsgType::kGet);
  EXPECT_EQ(req.id, 7u);
  EXPECT_EQ(req.key, "key-a");
  next(&req);
  EXPECT_EQ(req.type, MsgType::kPut);
  EXPECT_EQ(req.key, "key-b");
  EXPECT_EQ(req.value, "value-b");
  next(&req);
  EXPECT_EQ(req.type, MsgType::kMultiGet);
  EXPECT_EQ(req.keys, (std::vector<std::string>{"k1", "k2", "k3"}));
  next(&req);
  EXPECT_EQ(req.type, MsgType::kWriteBatch);
  ASSERT_EQ(req.batch.size(), 3u);
  EXPECT_EQ(req.batch.entry(0).key, "p");
  EXPECT_EQ(req.batch.entry(1).op, WriteBatch::Op::kMerge);
  EXPECT_EQ(req.batch.entry(2).op, WriteBatch::Op::kDelete);
  next(&req);
  EXPECT_EQ(req.type, MsgType::kPing);
  EXPECT_TRUE(rest.empty());
}

TEST(WireTest, ResponseRoundTrip) {
  std::string buf;
  AppendValueResponse(&buf, 3, "hello");
  AppendMultiResponse(&buf, 4, {Status::Ok(), Status::NotFound()}, {"v1", ""});
  AppendErrorResponse(&buf, 5, "boom");

  std::string_view rest = buf;
  auto next = [&](Response* resp) {
    FrameView frame;
    size_t consumed = 0;
    std::string error;
    ASSERT_EQ(ExtractFrame(rest, &frame, &consumed, &error), FrameStatus::kOk) << error;
    ASSERT_TRUE(ParseResponse(frame, resp).ok());
    rest = rest.substr(consumed);
  };
  Response resp;
  next(&resp);
  EXPECT_EQ(resp.type, MsgType::kValue);
  EXPECT_EQ(resp.value, "hello");
  next(&resp);
  EXPECT_EQ(resp.type, MsgType::kMulti);
  EXPECT_EQ(resp.statuses, (std::vector<uint8_t>{0, 1}));
  EXPECT_EQ(resp.values, (std::vector<std::string>{"v1", ""}));
  next(&resp);
  EXPECT_EQ(resp.type, MsgType::kError);
  EXPECT_EQ(resp.value, "boom");
}

TEST(WireTest, TornFrameReportsNeedMoreNeverError) {
  std::string buf;
  AppendPutRequest(&buf, 1, "torn-key", "torn-value");
  // Every strict prefix is torn input: kNeedMore, never kError.
  for (size_t n = 0; n < buf.size(); ++n) {
    FrameView frame;
    size_t consumed = 0;
    std::string error;
    EXPECT_EQ(ExtractFrame(std::string_view(buf.data(), n), &frame, &consumed, &error),
              FrameStatus::kNeedMore)
        << "prefix length " << n;
  }
  FrameView frame;
  size_t consumed = 0;
  std::string error;
  EXPECT_EQ(ExtractFrame(buf, &frame, &consumed, &error), FrameStatus::kOk);
  EXPECT_EQ(consumed, buf.size());
}

TEST(WireTest, RejectsRuntOversizedAndGarbageFrames) {
  FrameView frame;
  size_t consumed = 0;
  std::string error;
  // Runt: length word smaller than the type+id header.
  std::string runt("\x04\x00\x00\x00", 4);
  EXPECT_EQ(ExtractFrame(runt, &frame, &consumed, &error), FrameStatus::kError);
  // Oversized: length beyond kMaxFrameBytes fails immediately, without
  // waiting for that many bytes to arrive.
  std::string oversized;
  const uint32_t huge = kMaxFrameBytes + 1;
  oversized.append(reinterpret_cast<const char*>(&huge), 4);
  EXPECT_EQ(ExtractFrame(oversized, &frame, &consumed, &error), FrameStatus::kError);
  // Garbage type byte: rejected as soon as the byte is visible.
  std::string garbage("\x0a\x00\x00\x00\x7f", 5);
  EXPECT_EQ(ExtractFrame(garbage, &frame, &consumed, &error), FrameStatus::kError);
}

TEST(WireTest, RejectsTrailingGarbageAndWrongKind) {
  // A GET frame whose payload has bytes past the key must not parse.
  std::string good;
  AppendGetRequest(&good, 1, "k");
  std::string bad = good;
  bad.append("x");  // extend payload…
  bad[0] = static_cast<char>(static_cast<uint8_t>(bad[0]) + 1);  // …and fix the length
  FrameView frame;
  size_t consumed = 0;
  std::string error;
  ASSERT_EQ(ExtractFrame(bad, &frame, &consumed, &error), FrameStatus::kOk);
  Request req;
  EXPECT_FALSE(ParseRequest(frame, &req).ok());
  // A response frame is not a request and vice versa.
  std::string resp_bytes;
  AppendOkResponse(&resp_bytes, 2);
  ASSERT_EQ(ExtractFrame(resp_bytes, &frame, &consumed, &error), FrameStatus::kOk);
  EXPECT_FALSE(ParseRequest(frame, &req).ok());
  std::string req_bytes;
  AppendPingRequest(&req_bytes, 3);
  ASSERT_EQ(ExtractFrame(req_bytes, &frame, &consumed, &error), FrameStatus::kOk);
  Response resp;
  EXPECT_FALSE(ParseResponse(frame, &resp).ok());
}

// Hand-assembled frames whose length words and counts lie about the payload.
// The frame layer accepts them (they are well-formed frames); the payload
// parser must reject every one without reading past the payload.
TEST(WireTest, MalformedPayloadTable) {
  struct Case {
    const char* name;
    MsgType type;
    std::string payload;
  };
  auto vstr = [](uint32_t v) {
    std::string s;
    PutVarint32(&s, v);
    return s;
  };
  const std::vector<Case> kCases = {
      // Field length runs past the payload end.
      {"get_key_length_lie", MsgType::kGet, vstr(100) + "abc"},
      // Field length exceeds the per-field cap even though the frame fits.
      {"get_key_over_cap", MsgType::kGet, vstr((64u << 10) + 1) + "abc"},
      // Near-UINT32_MAX length: any `len + k` arithmetic in the decoder
      // would wrap; must still reject cleanly (mirrors the sstable varint
      // wrap bug fixed in this change).
      {"get_key_wrap", MsgType::kGet, vstr(0xFFFFFFFFu) + "abc"},
      {"get_empty_payload", MsgType::kGet, ""},
      // Valid key, then a lying value length.
      {"put_value_length_lie", MsgType::kPut, vstr(1) + "k" + vstr(50) + "v"},
      {"put_value_over_cap", MsgType::kPut, vstr(1) + "k" + vstr((8u << 20) + 1) + "v"},
      {"put_missing_value", MsgType::kPut, vstr(1) + "k"},
      // Count larger than the entries actually present.
      {"multiget_count_lie", MsgType::kMultiGet, vstr(3) + vstr(1) + "a"},
      // Count beyond the wire limit: rejected before any reserve().
      {"multiget_count_over_cap", MsgType::kMultiGet, vstr((1u << 20) + 1)},
      {"multiget_count_wrap", MsgType::kMultiGet, vstr(0xFFFFFFFFu)},
      {"batch_count_lie", MsgType::kWriteBatch,
       vstr(2) + std::string(1, '\x00') + vstr(1) + "k" + vstr(1) + "v"},
      {"batch_unknown_op", MsgType::kWriteBatch,
       vstr(1) + std::string(1, '\x09') + vstr(1) + "k" + vstr(1) + "v"},
      {"batch_truncated_entry", MsgType::kWriteBatch, vstr(1) + std::string(1, '\x00')},
      // Zero-argument requests must carry empty payloads.
      {"ping_with_payload", MsgType::kPing, "x"},
      {"stats_with_payload", MsgType::kStats, "junk"},
  };
  for (const Case& c : kCases) {
    std::string buf;
    const uint32_t len = kFrameOverhead + static_cast<uint32_t>(c.payload.size());
    buf.append(reinterpret_cast<const char*>(&len), 4);
    buf.push_back(static_cast<char>(c.type));
    const uint32_t id = 9;
    buf.append(reinterpret_cast<const char*>(&id), 4);
    buf.append(c.payload);

    FrameView frame;
    size_t consumed = 0;
    std::string error;
    ASSERT_EQ(ExtractFrame(buf, &frame, &consumed, &error), FrameStatus::kOk) << c.name;
    Request req;
    EXPECT_FALSE(ParseRequest(frame, &req).ok()) << c.name;
  }
}

// ------------------------------------------------------------------ router

TEST(RouterTest, DeterministicAcrossInstances) {
  ConsistentHashRouter a(4);
  ConsistentHashRouter b(4);
  for (int i = 0; i < 1000; ++i) {
    const std::string key = "key-" + std::to_string(i);
    const int shard = a.Route(key);
    EXPECT_EQ(shard, b.Route(key));
    EXPECT_GE(shard, 0);
    EXPECT_LT(shard, 4);
  }
}

TEST(RouterTest, CoversAllShardsRoughlyEvenly) {
  ConsistentHashRouter router(8);
  std::vector<int> counts(8, 0);
  const int kKeys = 20000;
  for (int i = 0; i < kKeys; ++i) {
    ++counts[static_cast<size_t>(router.Route("user-" + std::to_string(i)))];
  }
  for (int s = 0; s < 8; ++s) {
    // Every shard owns a nontrivial slice: within 3x either way of fair share.
    EXPECT_GT(counts[static_cast<size_t>(s)], kKeys / 8 / 3) << "shard " << s;
    EXPECT_LT(counts[static_cast<size_t>(s)], kKeys / 8 * 3) << "shard " << s;
  }
}

TEST(RouterTest, GrowthMovesOnlyASliverOfTheKeyspace) {
  // Growing N -> N+1 should move ~1/(N+1) of keys; assert well under the
  // 1/2-ish a modulo router would move.
  ConsistentHashRouter before(4);
  ConsistentHashRouter after(5);
  const int kKeys = 20000;
  int moved = 0;
  for (int i = 0; i < kKeys; ++i) {
    const std::string key = "key-" + std::to_string(i);
    if (before.Route(key) != after.Route(key)) {
      ++moved;
    }
  }
  const double fraction = static_cast<double>(moved) / kKeys;
  EXPECT_GT(fraction, 0.0);  // some keys must move to the new shard
  EXPECT_LT(fraction, 0.35) << "consistent hashing should move ~1/5 of keys, moved "
                            << fraction;
}

// ------------------------------------------------------------- shard stats

TEST(StoreStatsTest, MergeSumAddsCountersMaxesGaugesSumsLevelFiles) {
  StoreStats a;
  a.gets = 10;
  a.puts = 5;
  a.bytes_written = 100;
  a.wal_group_size_max = 4;
  a.io_in_flight_max = 2;
  a.level_files = {3, 1};
  StoreStats b;
  b.gets = 7;
  b.puts = 2;
  b.bytes_written = 50;
  b.wal_group_size_max = 3;
  b.io_in_flight_max = 6;
  b.level_files = {2, 2, 1};
  a.MergeSum(b);
  EXPECT_EQ(a.gets, 17u);
  EXPECT_EQ(a.puts, 7u);
  EXPECT_EQ(a.bytes_written, 150u);
  // Gauges take the widest single observation, never the sum.
  EXPECT_EQ(a.wal_group_size_max, 4u);
  EXPECT_EQ(a.io_in_flight_max, 6u);
  // level_files sums per level: N shards really hold N x the files.
  EXPECT_EQ(a.level_files, (std::vector<uint64_t>{5, 3, 1}));
}

// ------------------------------------------------------------------ server

TEST(ServerTest, FullRequestVocabularyOverLoopback) {
  ServerOptions opts;
  opts.shards = 3;
  opts.store.engine = "mem";
  auto server = Server::Start(opts);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  auto client = Client::Connect((*server)->port(), 2);
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  ASSERT_TRUE((*client)->Ping().ok());
  ASSERT_TRUE((*client)->Put("alpha", "1").ok());
  ASSERT_TRUE((*client)->Put("beta", "2").ok());
  std::string value;
  ASSERT_TRUE((*client)->Get("alpha", &value).ok());
  EXPECT_EQ(value, "1");
  EXPECT_TRUE((*client)->Get("missing", &value).IsNotFound());

  ASSERT_TRUE((*client)->Merge("alpha", "+more").ok());
  ASSERT_TRUE((*client)->Get("alpha", &value).ok());
  EXPECT_EQ(value, "1+more");

  ASSERT_TRUE((*client)->Delete("beta").ok());
  EXPECT_TRUE((*client)->Get("beta", &value).IsNotFound());

  // Cross-shard fan-out: a batch and a multi-get whose keys span shards.
  WriteBatch wb;
  for (int i = 0; i < 32; ++i) {
    wb.Put("bulk-" + std::to_string(i), "v" + std::to_string(i));
  }
  ASSERT_TRUE((*client)->Write(wb).ok());
  std::vector<std::string> keys;
  for (int i = 0; i < 32; ++i) {
    keys.push_back("bulk-" + std::to_string(i));
  }
  keys.push_back("not-there");
  std::vector<std::string> values;
  std::vector<Status> statuses;
  ASSERT_TRUE((*client)->MultiGet(keys, &values, &statuses).ok());
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(statuses[static_cast<size_t>(i)].ok()) << keys[static_cast<size_t>(i)];
    EXPECT_EQ(values[static_cast<size_t>(i)], "v" + std::to_string(i));
  }
  EXPECT_TRUE(statuses.back().IsNotFound());

  // STATS returns the per-shard + merged document and the op counts add up.
  auto stats_json = (*client)->StatsJson();
  ASSERT_TRUE(stats_json.ok());
  auto doc = ParseJson(*stats_json);
  ASSERT_TRUE(doc.ok()) << *stats_json;
  EXPECT_EQ(doc->GetUint("shards"), 3u);
  ASSERT_NE(doc->Get("per_shard"), nullptr);
  EXPECT_EQ(doc->Get("per_shard")->size(), 3u);
  ASSERT_NE(doc->Get("merged"), nullptr);
  EXPECT_GE(doc->Get("merged")->GetUint("puts"), 33u);  // 1 remaining put + 32 bulk

  (*server)->Stop();
}

TEST(ServerTest, PipelinedResponsesCompleteOutOfOrder) {
  ServerOptions opts;
  opts.shards = 2;
  opts.store.engine = "mem";
  // Find two keys on different shards, then delay the first key's shard so
  // the second request — sent later on the same connection — finishes first.
  ConsistentHashRouter router(2);
  std::string slow_key;
  std::string fast_key;
  for (int i = 0; i < 1000 && (slow_key.empty() || fast_key.empty()); ++i) {
    const std::string key = "k" + std::to_string(i);
    (router.Route(key) == 0 ? slow_key : fast_key) = key;
  }
  ASSERT_FALSE(slow_key.empty());
  ASSERT_FALSE(fast_key.empty());
  opts.test_delay_shard = 0;
  opts.test_delay_ms = 100;
  auto server = Server::Start(opts);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  auto client = Client::Connect((*server)->port(), 1);
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  Client::Lease lease = (*client)->AcquireLease();
  const uint32_t slow_id = lease.NextId();
  const uint32_t fast_id = lease.NextId();
  std::string burst;
  AppendPutRequest(&burst, slow_id, slow_key, "slow");
  AppendPutRequest(&burst, fast_id, fast_key, "fast");
  ASSERT_TRUE(lease.conn()->Send(burst).ok());

  Response first;
  Response second;
  ASSERT_TRUE(lease.conn()->RecvResponse(&first).ok());
  ASSERT_TRUE(lease.conn()->RecvResponse(&second).ok());
  // The later-sent request (undelayed shard) must complete first: the
  // protocol really is pipelined and matched by id, not arrival order.
  EXPECT_EQ(first.id, fast_id);
  EXPECT_EQ(second.id, slow_id);
  EXPECT_EQ(first.type, MsgType::kOk);
  EXPECT_EQ(second.type, MsgType::kOk);

  (*server)->Stop();
}

// The end-to-end acceptance gate: a multi-client loadgen replay of a Borg
// trace through 4 wire shards loses nothing and converges to exactly the
// state an in-process single-store oracle replay produces.
TEST(ServerTest, LoadgenReplayMatchesInProcessOracle) {
  Config config;
  config.Set("source", "borg");
  config.Set("events", "4000");
  config.Set("seed", "17");
  auto trace = BuildAccessTrace(config);
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  ASSERT_GT(trace->size(), 1000u);

  ScopedTempDir tmp("gadget-server-test");
  ServerOptions sopts;
  sopts.shards = 4;
  sopts.store.engine = "lsm";
  sopts.store.dir = tmp.path() + "/db";
  auto server = Server::Start(sopts);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  LoadgenOptions lopts;
  lopts.port = (*server)->port();
  lopts.clients = 8;
  lopts.shards = 4;
  lopts.batch_size = 16;
  lopts.pipeline_depth = 4;
  auto result = RunLoadgen(*trace, lopts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Zero lost or duplicated operations.
  EXPECT_EQ(result->ops_sent, trace->size());
  EXPECT_EQ(result->ops_acked, result->ops_sent);
  EXPECT_EQ(result->errors, 0u);
  EXPECT_EQ(result->replay.ops, result->ops_acked);
  // The client-side routing histogram covers the whole trace.
  uint64_t shard_total = 0;
  for (uint64_t n : result->shard_ops) {
    shard_total += n;
  }
  EXPECT_EQ(shard_total, trace->size());
  EXPECT_GE(result->shard_skew, 1.0);

  // Oracle: the same trace replayed into one in-process MemStore.
  StoreOptions oracle_opts;
  oracle_opts.engine = "mem";
  auto oracle = OpenStore(oracle_opts);
  ASSERT_TRUE(oracle.ok());
  auto oracle_result = ReplayTrace(*trace, oracle->get());
  ASSERT_TRUE(oracle_result.ok()) << oracle_result.status().ToString();

  // Every distinct key must agree over the wire: same value or same absence.
  std::set<std::string> keys;
  std::string key;
  for (const StateAccess& a : *trace) {
    EncodeStateKeyTo(a.key, &key);
    keys.insert(key);
  }
  auto client = Client::Connect((*server)->port(), 1);
  ASSERT_TRUE(client.ok());
  uint64_t checked = 0;
  for (const std::string& k : keys) {
    std::string expect;
    std::string got;
    const Status se = (*oracle)->Get(k, &expect);
    ASSERT_TRUE(se.ok() || se.IsNotFound());
    const Status sg = (*client)->Get(k, &got);
    if (se.IsNotFound()) {
      EXPECT_TRUE(sg.IsNotFound()) << "key " << checked << " present only over the wire";
    } else {
      ASSERT_TRUE(sg.ok()) << sg.ToString();
      EXPECT_EQ(got, expect) << "key " << checked << " diverged";
    }
    ++checked;
  }
  EXPECT_EQ(checked, keys.size());
  ASSERT_TRUE((*oracle)->Close().ok());
  (*server)->Stop();
}

}  // namespace
}  // namespace wire
}  // namespace gadget
