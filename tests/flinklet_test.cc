// Tests for the flinklet reference runtime: operator semantics verified
// against brute-force references, trace structure, watermark behaviour, and
// backend instrumentation.
#include <gtest/gtest.h>

#include <map>

#include "src/common/file_util.h"
#include "src/flinklet/runtime.h"
#include "src/stores/memstore.h"

namespace gadget {
namespace {

Event Rec(uint64_t t, uint64_t key, uint8_t stream = 0, uint32_t vsize = 64) {
  Event e;
  e.event_time_ms = t;
  e.key = key;
  e.stream_id = stream;
  e.value_size = vsize;
  return e;
}

PipelineOptions DefaultOptions() {
  PipelineOptions o;
  o.watermark_every = 100;
  return o;
}

// ------------------------------------------------------------ state backend

TEST(StateBackendTest, RecordsTraceAndServesShadowState) {
  std::vector<StateAccess> trace;
  InstrumentedStateBackend backend(nullptr, &trace);
  StateKey k{1, 2};
  ASSERT_TRUE(backend.Put(k, "v", 10).ok());
  std::string value;
  ASSERT_TRUE(backend.Get(k, &value, 11).ok());
  EXPECT_EQ(value, "v");
  ASSERT_TRUE(backend.Merge(k, "+", 12).ok());
  ASSERT_TRUE(backend.Get(k, &value, 13).ok());
  EXPECT_EQ(value, "v+");
  ASSERT_TRUE(backend.Delete(k, 14).ok());
  EXPECT_TRUE(backend.Get(k, &value, 15).IsNotFound());

  ASSERT_EQ(trace.size(), 6u);
  EXPECT_EQ(trace[0].op, OpType::kPut);
  EXPECT_EQ(trace[1].op, OpType::kGet);
  EXPECT_EQ(trace[2].op, OpType::kMerge);
  EXPECT_EQ(trace[4].op, OpType::kDelete);
  EXPECT_EQ(trace[0].timestamp, 10u);
}

TEST(StateBackendTest, WorksAgainstRealStore) {
  MemStore store;
  std::vector<StateAccess> trace;
  InstrumentedStateBackend backend(&store, &trace);
  StateKey k{7, 0};
  ASSERT_TRUE(backend.Put(k, "x", 1).ok());
  std::string value;
  ASSERT_TRUE(backend.Get(k, &value, 2).ok());
  EXPECT_EQ(value, "x");
  EXPECT_EQ(store.stats().puts, 1u);
}

// ------------------------------------------------------- tumbling windows

TEST(TumblingWindowTest, CountsMatchBruteForce) {
  // 5s windows; events across 3 windows and 2 keys.
  std::vector<Event> events;
  std::map<std::pair<uint64_t, uint64_t>, uint64_t> expected;  // (key, window_end) -> count
  uint64_t times[] = {100, 1200, 4999, 5000, 7300, 9999, 12000, 14999};
  for (uint64_t t : times) {
    for (uint64_t key : {1ull, 2ull}) {
      events.push_back(Rec(t, key));
      ++expected[{key, (t / 5000) * 5000 + 5000}];
    }
  }
  auto result = RunPipeline("tumbling_incr", events, DefaultOptions());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  std::map<std::pair<uint64_t, uint64_t>, uint64_t> got;
  for (const OperatorOutput& out : result->outputs) {
    got[{out.key, out.time}] = out.count;
  }
  EXPECT_EQ(got, expected);
}

TEST(TumblingWindowTest, IncrementalTracePattern) {
  std::vector<Event> events = {Rec(100, 1), Rec(200, 1)};
  auto result = RunPipeline("tumbling_incr", events, DefaultOptions());
  ASSERT_TRUE(result.ok());
  // Per event: get+put; final watermark: get (FGet) + delete.
  ASSERT_EQ(result->trace.size(), 6u);
  EXPECT_EQ(result->trace[0].op, OpType::kGet);
  EXPECT_EQ(result->trace[1].op, OpType::kPut);
  EXPECT_EQ(result->trace[2].op, OpType::kGet);
  EXPECT_EQ(result->trace[3].op, OpType::kPut);
  EXPECT_EQ(result->trace[4].op, OpType::kGet);
  EXPECT_EQ(result->trace[5].op, OpType::kDelete);
}

TEST(TumblingWindowTest, HolisticUsesMerge) {
  std::vector<Event> events = {Rec(100, 1), Rec(200, 1), Rec(300, 1)};
  auto result = RunPipeline("tumbling_hol", events, DefaultOptions());
  ASSERT_TRUE(result.ok());
  // Per event: merge; firing: get + delete.
  ASSERT_EQ(result->trace.size(), 5u);
  EXPECT_EQ(result->trace[0].op, OpType::kMerge);
  EXPECT_EQ(result->trace[1].op, OpType::kMerge);
  EXPECT_EQ(result->trace[2].op, OpType::kMerge);
  EXPECT_EQ(result->trace[3].op, OpType::kGet);
  EXPECT_EQ(result->trace[4].op, OpType::kDelete);
  // Holistic window collected all three payloads.
  ASSERT_EQ(result->outputs.size(), 1u);
  EXPECT_EQ(result->outputs[0].count, 3u * 64u);
}

TEST(TumblingWindowTest, WatermarkFiresOnlyExpiredWindows) {
  PipelineOptions opts = DefaultOptions();
  opts.watermark_every = 0;  // manual watermarks only
  std::vector<Event> events = {Rec(100, 1), Rec(6000, 1), Event::Watermark(5500)};
  auto result = RunPipeline("tumbling_incr", events, opts);
  ASSERT_TRUE(result.ok());
  // Watermark 5500 fires the [0,5000) window but not [5000,10000).
  // Final flush fires the second.
  ASSERT_EQ(result->outputs.size(), 2u);
  EXPECT_EQ(result->outputs[0].time, 5000u);
  EXPECT_EQ(result->outputs[1].time, 10000u);
}

TEST(TumblingWindowTest, LateEventBeyondLatenessIsDropped) {
  PipelineOptions opts = DefaultOptions();
  opts.watermark_every = 0;
  std::vector<Event> events = {Rec(100, 1), Event::Watermark(6000), Rec(200, 1)};
  auto result = RunPipeline("tumbling_incr", events, opts);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->outputs.size(), 1u);
  EXPECT_EQ(result->outputs[0].count, 1u);  // the late event did not count
}

TEST(TumblingWindowTest, AllowedLatenessAdmitsLateEvents) {
  PipelineOptions opts = DefaultOptions();
  opts.watermark_every = 0;
  opts.operator_config.allowed_lateness_ms = 10'000;
  std::vector<Event> events = {Rec(100, 1), Event::Watermark(6000), Rec(200, 1),
                               Event::Watermark(16'000)};
  auto result = RunPipeline("tumbling_incr", events, opts);
  ASSERT_TRUE(result.ok());
  ASSERT_GE(result->outputs.size(), 1u);
  EXPECT_EQ(result->outputs[0].count, 2u);  // late event included
}

// ------------------------------------------------------------ sliding windows

TEST(SlidingWindowTest, EventLandsInLengthOverSlideWindows) {
  PipelineOptions opts = DefaultOptions();
  opts.operator_config.window_length_ms = 5000;
  opts.operator_config.window_slide_ms = 1000;
  std::vector<Event> events = {Rec(10'000, 1)};
  auto result = RunPipeline("sliding_incr", events, opts);
  ASSERT_TRUE(result.ok());
  // 5 windows, each with count 1.
  ASSERT_EQ(result->outputs.size(), 5u);
  for (const OperatorOutput& out : result->outputs) {
    EXPECT_EQ(out.count, 1u);
  }
  // 5x (get+put) + 5x (get+delete).
  EXPECT_EQ(result->trace.size(), 20u);
}

TEST(SlidingWindowTest, CountsMatchBruteForce) {
  PipelineOptions opts = DefaultOptions();
  opts.operator_config.window_length_ms = 4000;
  opts.operator_config.window_slide_ms = 2000;
  std::vector<Event> events;
  std::map<uint64_t, uint64_t> expected;  // window_end -> count
  for (uint64_t t : {500ull, 1500ull, 2500ull, 5100ull, 7900ull}) {
    events.push_back(Rec(t, 9));
    uint64_t first_end = (t / 2000) * 2000 + 2000;
    for (uint64_t end = first_end; end <= t + 4000; end += 2000) {
      if (end >= 4000 && end - 4000 > t) {
        continue;
      }
      ++expected[end];
    }
  }
  auto result = RunPipeline("sliding_incr", events, opts);
  ASSERT_TRUE(result.ok());
  std::map<uint64_t, uint64_t> got;
  for (const OperatorOutput& out : result->outputs) {
    got[out.time] += out.count;
  }
  EXPECT_EQ(got, expected);
}

// ------------------------------------------------------------ session windows

TEST(SessionWindowTest, GapSplitsSessions) {
  PipelineOptions opts = DefaultOptions();
  opts.watermark_every = 0;
  opts.operator_config.session_gap_ms = 1000;
  // Two bursts separated by more than the gap -> two sessions.
  std::vector<Event> events = {Rec(100, 1), Rec(400, 1), Rec(800, 1),
                               Rec(5000, 1), Rec(5500, 1)};
  auto result = RunPipeline("session_incr", events, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->outputs.size(), 2u);
  EXPECT_EQ(result->outputs[0].count, 3u);
  EXPECT_EQ(result->outputs[1].count, 2u);
}

TEST(SessionWindowTest, BridgeEventMergesSessions) {
  PipelineOptions opts = DefaultOptions();
  opts.watermark_every = 0;
  opts.operator_config.session_gap_ms = 1000;
  // Sessions at [100] and [2000]; the event at 1100 bridges both
  // ([100,1100+gap] overlaps [2000, ...] since 1100+1000 >= 2000).
  std::vector<Event> events = {Rec(100, 1), Rec(2000, 1), Rec(1100, 1)};
  auto result = RunPipeline("session_incr", events, opts);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->outputs.size(), 1u);
  EXPECT_EQ(result->outputs[0].count, 3u);
  EXPECT_EQ(result->outputs[0].time, 3000u);  // merged end = 2000 + gap
}

TEST(SessionWindowTest, SessionsPerKeyAreIndependent) {
  PipelineOptions opts = DefaultOptions();
  opts.watermark_every = 0;
  opts.operator_config.session_gap_ms = 1000;
  std::vector<Event> events = {Rec(100, 1), Rec(150, 2), Rec(600, 1)};
  auto result = RunPipeline("session_incr", events, opts);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->outputs.size(), 2u);
  std::map<uint64_t, uint64_t> by_key;
  for (const OperatorOutput& out : result->outputs) {
    by_key[out.key] = out.count;
  }
  EXPECT_EQ(by_key[1], 2u);
  EXPECT_EQ(by_key[2], 1u);
}

TEST(SessionWindowTest, HolisticSessionsNeverPut) {
  PipelineOptions opts = DefaultOptions();
  opts.operator_config.session_gap_ms = 1000;
  std::vector<Event> events;
  for (int i = 0; i < 50; ++i) {
    events.push_back(Rec(static_cast<uint64_t>(i) * 700, static_cast<uint64_t>(i % 3)));
  }
  auto result = RunPipeline("session_hol", events, opts);
  ASSERT_TRUE(result.ok());
  for (const StateAccess& a : result->trace) {
    EXPECT_NE(a.op, OpType::kPut);  // Table 1: Session-Hol has zero puts
  }
}

// -------------------------------------------------------------------- joins

TEST(ContinuousJoinTest, MatchesOnlyWhileOpen) {
  PipelineOptions opts = DefaultOptions();
  opts.watermark_every = 0;
  std::vector<Event> events;
  events.push_back(Rec(100, 1, 0));  // open record for key 1
  events.push_back(Rec(200, 1, 1));  // probe: match
  events.push_back(Rec(300, 1, 1));  // probe: match
  Event close = Rec(400, 1, 0);
  close.expiry_time_ms = 400;  // close
  events.push_back(close);
  events.push_back(Rec(500, 1, 1));  // probe after close: no match
  auto result = RunPipeline("join_cont", events, opts);
  ASSERT_TRUE(result.ok());
  // The close event emits the accumulated matches (2 payloads of 64B).
  ASSERT_EQ(result->outputs.size(), 1u);
  EXPECT_EQ(result->outputs[0].count, 128u);
}

TEST(IntervalJoinTest, BuffersAndCleansUp) {
  PipelineOptions opts = DefaultOptions();
  opts.watermark_every = 0;
  opts.operator_config.join_lower_ms = 100;
  opts.operator_config.join_upper_ms = 200;
  std::vector<Event> events = {Rec(1000, 1, 0), Rec(1150, 1, 1),
                               Event::Watermark(10'000)};
  auto result = RunPipeline("join_interval", events, opts);
  ASSERT_TRUE(result.ok());
  // Each event: 1 put + 1 get; the watermark deletes both buffered entries.
  OpType expected[] = {OpType::kPut, OpType::kGet, OpType::kPut,
                       OpType::kGet, OpType::kDelete, OpType::kDelete};
  ASSERT_EQ(result->trace.size(), 6u);
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(result->trace[i].op, expected[i]) << i;
  }
}

TEST(WindowJoinTest, JoinsBothSidesPerWindow) {
  PipelineOptions opts = DefaultOptions();
  opts.watermark_every = 0;
  std::vector<Event> events = {Rec(100, 1, 0), Rec(200, 1, 1), Rec(300, 1, 1)};
  auto result = RunPipeline("join_tumbling", events, opts);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->outputs.size(), 1u);
  EXPECT_EQ(result->outputs[0].count, 3u * 64u);  // both sides' contents
  // 3 merges + (2 gets + 2 deletes) at firing.
  EXPECT_EQ(result->trace.size(), 7u);
}

TEST(WindowJoinTest, NoOutputWhenOneSideEmpty) {
  PipelineOptions opts = DefaultOptions();
  opts.watermark_every = 0;
  std::vector<Event> events = {Rec(100, 1, 0), Rec(200, 2, 1)};
  auto result = RunPipeline("join_tumbling", events, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->outputs.empty());  // different keys never join
}

// -------------------------------------------------------------- aggregation

TEST(AggregationTest, RollingCountPerKey) {
  std::vector<Event> events = {Rec(1, 5), Rec(2, 5), Rec(3, 7), Rec(4, 5)};
  auto result = RunPipeline("aggregation", events, DefaultOptions());
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->outputs.size(), 4u);
  EXPECT_EQ(result->outputs[0].count, 1u);
  EXPECT_EQ(result->outputs[1].count, 2u);
  EXPECT_EQ(result->outputs[2].count, 1u);
  EXPECT_EQ(result->outputs[3].count, 3u);
  // No deletes ever (Table 1).
  for (const StateAccess& a : result->trace) {
    EXPECT_NE(a.op, OpType::kDelete);
  }
}

// ------------------------------------------------------ cross-cutting sweeps

class AllOperatorsTest : public ::testing::TestWithParam<std::string> {};

TEST_P(AllOperatorsTest, RunsOnBorgWithoutError) {
  auto dataset = MakeDataset("borg", 5'000, 3);
  ASSERT_TRUE(dataset.ok());
  auto result = RunPipeline(GetParam(), **dataset, DefaultOptions());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->events_processed, 5'000u);
  EXPECT_GT(result->trace.size(), 0u);
  // Timestamps must be non-decreasing within the trace (single-task total
  // order, §2.3) — allowing equal stamps for multi-access events.
  for (size_t i = 1; i < result->trace.size(); ++i) {
    // Late events can move timestamps backwards relative to earlier windows;
    // the access ORDER is what is totally ordered, which the vector is by
    // construction. Check the trace is non-empty instead of strictly sorted.
    break;
  }
}

TEST_P(AllOperatorsTest, SameInputSameTrace) {
  auto d1 = MakeDataset("taxi", 2'000, 11);
  auto d2 = MakeDataset("taxi", 2'000, 11);
  ASSERT_TRUE(d1.ok() && d2.ok());
  auto r1 = RunPipeline(GetParam(), **d1, DefaultOptions());
  auto r2 = RunPipeline(GetParam(), **d2, DefaultOptions());
  ASSERT_TRUE(r1.ok() && r2.ok());
  ASSERT_EQ(r1->trace.size(), r2->trace.size());
  for (size_t i = 0; i < r1->trace.size(); ++i) {
    EXPECT_EQ(r1->trace[i].op, r2->trace[i].op);
    EXPECT_EQ(r1->trace[i].key, r2->trace[i].key);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, AllOperatorsTest, ::testing::ValuesIn(AllOperatorNames()),
                         [](const auto& spec) { return spec.param; });

TEST(OperatorFactoryTest, RejectsUnknownName) {
  OperatorContext ctx;
  EXPECT_FALSE(MakeOperator("median_filter", &ctx).ok());
}

}  // namespace
}  // namespace gadget
