// Tests for the Gadget harness: event generator, driver/state machines,
// workload generation (incl. fidelity vs flinklet traces), the custom
// operator extension API, and the performance evaluator.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/common/file_util.h"
#include "src/flinklet/runtime.h"
#include "src/gadget/evaluator.h"
#include "src/gadget/event_generator.h"
#include "src/gadget/workload.h"
#include "src/streams/trace_io.h"

namespace gadget {
namespace {

// ----------------------------------------------------------- event generator

TEST(EventGeneratorTest, ProducesRequestedCountAndWatermarks) {
  EventGeneratorOptions opts;
  opts.num_events = 1000;
  opts.watermark_every = 100;
  auto source = MakeEventGenerator(opts);
  ASSERT_TRUE(source.ok());
  uint64_t records = 0, watermarks = 0;
  Event e;
  while ((*source)->Next(&e)) {
    if (e.is_watermark()) {
      ++watermarks;
    } else {
      ++records;
    }
  }
  EXPECT_EQ(records, 1000u);
  EXPECT_EQ(watermarks, 10u);
}

TEST(EventGeneratorTest, KeysFollowConfiguredDomain) {
  EventGeneratorOptions opts;
  opts.num_events = 5000;
  opts.num_keys = 50;
  opts.key_distribution = "uniform";
  auto source = MakeEventGenerator(opts);
  ASSERT_TRUE(source.ok());
  std::set<uint64_t> keys;
  Event e;
  while ((*source)->Next(&e)) {
    if (!e.is_watermark()) {
      ASSERT_LT(e.key, 50u);
      keys.insert(e.key);
    }
  }
  EXPECT_EQ(keys.size(), 50u);
}

TEST(EventGeneratorTest, OutOfOrderEventsAreLate) {
  EventGeneratorOptions opts;
  opts.num_events = 10'000;
  opts.out_of_order_fraction = 0.2;
  opts.max_lateness_ms = 500;
  opts.arrival_process = "constant";
  opts.rate_per_sec = 1000.0;
  auto source = MakeEventGenerator(opts);
  ASSERT_TRUE(source.ok());
  uint64_t head = 0;
  uint64_t late = 0, total = 0;
  Event e;
  while ((*source)->Next(&e)) {
    if (e.is_watermark()) {
      continue;
    }
    ++total;
    if (e.event_time_ms < head) {
      ++late;
      EXPECT_GE(e.event_time_ms + opts.max_lateness_ms, head);
    }
    head = std::max(head, e.event_time_ms);
  }
  EXPECT_NEAR(static_cast<double>(late) / static_cast<double>(total), 0.2, 0.03);
}

TEST(EventGeneratorTest, TwoStreamsRoundRobin) {
  EventGeneratorOptions opts;
  opts.num_events = 100;
  opts.num_streams = 2;
  opts.watermark_every = 0;
  auto source = MakeEventGenerator(opts);
  ASSERT_TRUE(source.ok());
  Event e;
  int i = 0;
  while ((*source)->Next(&e)) {
    EXPECT_EQ(e.stream_id, i % 2);
    ++i;
  }
}

TEST(EventGeneratorTest, ReplaySourceAddsWatermarks) {
  auto dataset = MakeDataset("azure", 500, 5);
  ASSERT_TRUE(dataset.ok());
  auto source = MakeReplaySource(std::move(*dataset), 50);
  uint64_t records = 0, watermarks = 0;
  uint64_t max_time = 0;
  Event e;
  while (source->Next(&e)) {
    if (e.is_watermark()) {
      ++watermarks;
      EXPECT_LE(e.event_time_ms, max_time);
    } else {
      max_time = std::max(max_time, e.event_time_ms);
      ++records;
    }
  }
  EXPECT_EQ(records, 500u);
  EXPECT_EQ(watermarks, 10u);
}

// --------------------------------------------------------------- the driver

TEST(DriverTest, TumblingIncrEmitsFigure9Pattern) {
  std::vector<StateAccess> queue;
  auto logic = MakeOperatorLogic("tumbling_incr");
  ASSERT_TRUE(logic.ok());
  Driver driver(std::move(*logic), &queue);
  OperatorConfig cfg;
  driver.set_config(cfg);

  Event e;
  e.event_time_ms = 100;
  e.key = 1;
  e.value_size = 64;
  ASSERT_TRUE(driver.OnEvent(e).ok());
  e.event_time_ms = 200;
  ASSERT_TRUE(driver.OnEvent(e).ok());
  ASSERT_TRUE(driver.OnWatermark(10'000).ok());

  ASSERT_EQ(queue.size(), 6u);
  EXPECT_EQ(queue[0].op, OpType::kGet);
  EXPECT_EQ(queue[1].op, OpType::kPut);
  EXPECT_EQ(queue[2].op, OpType::kGet);
  EXPECT_EQ(queue[3].op, OpType::kPut);
  EXPECT_EQ(queue[4].op, OpType::kGet);     // FGet on trigger
  EXPECT_EQ(queue[5].op, OpType::kDelete);  // cleanup
  EXPECT_EQ(queue[0].key, (StateKey{1, 5000}));
  EXPECT_EQ(driver.num_machines(), 0u);  // terminated
}

TEST(DriverTest, MachinesAreDroppedAfterTermination) {
  std::vector<StateAccess> queue;
  auto logic = MakeOperatorLogic("sliding_incr");
  ASSERT_TRUE(logic.ok());
  Driver driver(std::move(*logic), &queue);
  OperatorConfig cfg;
  cfg.window_length_ms = 5000;
  cfg.window_slide_ms = 1000;
  driver.set_config(cfg);
  Event e;
  e.event_time_ms = 10'000;
  e.key = 3;
  ASSERT_TRUE(driver.OnEvent(e).ok());
  EXPECT_EQ(driver.num_machines(), 5u);  // one per assigned window
  ASSERT_TRUE(driver.OnWatermark(20'000).ok());
  EXPECT_EQ(driver.num_machines(), 0u);
}

TEST(DriverTest, AggregationMachinesPersist) {
  std::vector<StateAccess> queue;
  auto logic = MakeOperatorLogic("aggregation");
  ASSERT_TRUE(logic.ok());
  Driver driver(std::move(*logic), &queue);
  for (uint64_t k = 0; k < 10; ++k) {
    Event e;
    e.event_time_ms = 100 + k;
    e.key = k;
    ASSERT_TRUE(driver.OnEvent(e).ok());
  }
  ASSERT_TRUE(driver.OnWatermark(1'000'000).ok());
  EXPECT_EQ(driver.num_machines(), 10u);  // aggregation never expires
}

// ------------------------------------------------- custom operator (§5.4)

// A user-defined operator: counts events per key and deletes state every
// second event (a toy dedup / toggle).
class ToggleLogic : public OperatorLogic {
 public:
  const char* name() const override { return "toggle"; }

  std::vector<StateKey> AssignStateMachines(const Event& e, Driver& driver) override {
    StateKey key{e.key, 0};
    driver.GetOrCreateMachine(key, e.event_time_ms);
    return {key};
  }

  void Run(StateMachine& m, const Event& e, Driver& driver, OpEmitter& out) override {
    if (m.state == 0) {
      out.Emit(OpType::kPut, m.key, e.value_size, e.event_time_ms);
      m.state = 1;
    } else {
      out.Emit(OpType::kDelete, m.key, 0, e.event_time_ms);
      m.state = 0;
    }
  }

  void Terminate(StateMachine& m, uint64_t fire_time, Driver& driver, OpEmitter& out) override {
    driver.DropMachine(m.key);
  }
};

TEST(CustomOperatorTest, ExtensionApiWorks) {
  EventGeneratorOptions gen;
  gen.num_events = 10;
  gen.num_keys = 1;
  gen.watermark_every = 0;
  auto source = MakeEventGenerator(gen);
  ASSERT_TRUE(source.ok());
  auto result = GenerateWorkload(std::make_unique<ToggleLogic>(), **source, OperatorConfig{});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->trace.size(), 10u);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(result->trace[i].op, i % 2 == 0 ? OpType::kPut : OpType::kDelete);
  }
}

// --------------------------------------------- workload generation + files

TEST(WorkloadTest, OfflineModeRoundTrips) {
  ScopedTempDir dir;
  const std::string path = dir.path() + "/workload.trace";
  EventGeneratorOptions gen;
  gen.num_events = 2'000;
  auto source = MakeEventGenerator(gen);
  ASSERT_TRUE(source.ok());
  ASSERT_TRUE(GenerateWorkloadToFile("tumbling_incr", **source, OperatorConfig{}, path).ok());
  auto trace = ReadAccessTrace(path);
  ASSERT_TRUE(trace.ok());
  EXPECT_GT(trace->size(), 4'000u);  // >= 2 accesses per event
}

class GadgetFidelityTest : public ::testing::TestWithParam<std::string> {};

// The heart of §6.1 / Fig. 10: Gadget's simulated trace must match the
// structure of the flinklet ("real") trace on the same input.
TEST_P(GadgetFidelityTest, TraceMatchesFlinkletOnBorg) {
  const std::string op = GetParam();
  // Identical event streams for both systems.
  auto d1 = MakeDataset("borg", 10'000, 17);
  ASSERT_TRUE(d1.ok());
  PipelineOptions popts;
  auto real = RunPipeline(op, **d1, popts);
  ASSERT_TRUE(real.ok()) << real.status().ToString();

  auto d2 = MakeDataset("borg", 10'000, 17);
  ASSERT_TRUE(d2.ok());
  auto source = MakeReplaySource(std::move(*d2), popts.watermark_every);
  auto sim = GenerateWorkload(op, *source, popts.operator_config);
  ASSERT_TRUE(sim.ok()) << sim.status().ToString();

  // Same number of accesses, same op mix, same key sequence.
  ASSERT_EQ(sim->trace.size(), real->trace.size()) << op;
  size_t mismatches = 0;
  for (size_t i = 0; i < sim->trace.size(); ++i) {
    if (sim->trace[i].op != real->trace[i].op || sim->trace[i].key != real->trace[i].key) {
      ++mismatches;
    }
  }
  EXPECT_EQ(mismatches, 0u) << op;
}

INSTANTIATE_TEST_SUITE_P(AllOps, GadgetFidelityTest, ::testing::ValuesIn(AllOperatorNames()),
                         [](const auto& spec) { return spec.param; });

// ----------------------------------------------------------------- replayer

TEST(EvaluatorTest, ReplaysAgainstStore) {
  ScopedTempDir dir;
  auto store = OpenStore({.engine = "lsm", .dir = dir.path() + "/db"});
  ASSERT_TRUE(store.ok());
  std::vector<StateAccess> trace;
  for (uint64_t i = 0; i < 1000; ++i) {
    trace.push_back(StateAccess{OpType::kPut, StateKey{i % 50, 0}, 64, i});
    trace.push_back(StateAccess{OpType::kGet, StateKey{i % 50, 0}, 0, i});
  }
  auto result = ReplayTrace(trace, store->get());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->ops, 2000u);
  EXPECT_GT(result->throughput_ops_per_sec, 0);
  EXPECT_EQ(result->not_found, 0u);
  EXPECT_EQ(result->latency_ns.count(), 2000u);
  ASSERT_TRUE((*store)->Close().ok());
}

TEST(EvaluatorTest, TranslatesMergeForStoresWithoutIt) {
  ScopedTempDir dir;
  auto store = OpenStore({.engine = "faster", .dir = dir.path() + "/db"});
  ASSERT_TRUE(store.ok());
  std::vector<StateAccess> trace = {
      StateAccess{OpType::kMerge, StateKey{1, 0}, 8, 0},
      StateAccess{OpType::kMerge, StateKey{1, 0}, 8, 1},
      StateAccess{OpType::kGet, StateKey{1, 0}, 0, 2},
  };
  auto result = ReplayTrace(trace, store->get());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  std::string value;
  ASSERT_TRUE((*store)->Get(EncodeStateKey(StateKey{1, 0}), &value).ok());
  EXPECT_EQ(value.size(), 16u);  // two appended operands
  ASSERT_TRUE((*store)->Close().ok());
}

TEST(EvaluatorTest, MaxOpsLimitsReplay) {
  ScopedTempDir dir;
  auto store = OpenStore({.engine = "mem", .dir = ""});
  ASSERT_TRUE(store.ok());
  std::vector<StateAccess> trace(100, StateAccess{OpType::kPut, StateKey{1, 0}, 8, 0});
  ReplayOptions opts;
  opts.max_ops = 10;
  auto result = ReplayTrace(trace, store->get(), opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ops, 10u);
}

TEST(EvaluatorTest, ServiceRatePacesReplay) {
  ScopedTempDir dir;
  auto store = OpenStore({.engine = "mem", .dir = ""});
  ASSERT_TRUE(store.ok());
  std::vector<StateAccess> trace(50, StateAccess{OpType::kPut, StateKey{1, 0}, 8, 0});
  ReplayOptions opts;
  opts.service_rate_ops_per_sec = 1000;  // 50 ops should take >= ~49ms
  auto result = ReplayTrace(trace, store->get(), opts);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->elapsed_seconds, 0.04);
}

}  // namespace
}  // namespace gadget
