// Tests for the multi-reactor network path (src/server/server.cc): connection
// sharding across IO threads, pipelined-response writev coalescing, the
// bounded per-connection output queue under a deliberately stalled reader
// (frames stay whole and in order, backpressure reaches the workers), the
// io_uring backend when the kernel offers it (silent epoll fallback
// otherwise), and the boot-race connect retry. These are the TSan-lane
// subjects: everything here runs multiple reactors, workers, and client
// threads against the same counters and queues.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/common/config.h"
#include "src/common/file_util.h"
#include "src/common/json.h"
#include "src/gadget/evaluator.h"
#include "src/gadget/harness.h"
#include "src/server/client.h"
#include "src/server/loadgen.h"
#include "src/server/net/socket.h"
#include "src/server/server.h"
#include "src/server/wire.h"
#include "src/stores/kvstore.h"

namespace gadget {
namespace wire {
namespace {

void SleepMs(int ms) { std::this_thread::sleep_for(std::chrono::milliseconds(ms)); }

// Net counters are bumped AFTER the write syscall returns, so a client can
// read its response a beat before the sender thread (descheduled mid-drain)
// runs the increments. Polls until `settled` holds or ~1s passes; either way
// the caller's assertions run against the returned snapshot.
template <typename Pred>
NetStats WaitForNet(Server* server, Pred settled) {
  NetStats ns = server->net_stats();
  for (int i = 0; i < 200 && !settled(ns); ++i) {
    SleepMs(5);
    ns = server->net_stats();
  }
  return ns;
}

// ------------------------------------------------------- reactor sharding

// Eight pooled connections round-robin across four reactors, so after one
// ping per connection every reactor must have decoded frames; the STATS
// document exposes the same gauges the report carries.
TEST(ServerNetTest, ConnectionsShardAcrossReactors) {
  ServerOptions opts;
  opts.shards = 2;
  opts.io_threads = 4;
  opts.store.engine = "mem";
  auto server = Server::Start(opts);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  EXPECT_EQ((*server)->io_threads(), 4);

  auto client = Client::Connect((*server)->port(), /*pool_size=*/8);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE((*client)->Ping().ok());
  }

  const NetStats ns = WaitForNet(server->get(), [](const NetStats& s) {
    if (s.bytes_out == 0 || s.writev_calls == 0) {
      return false;
    }
    for (uint64_t n : s.thread_ops) {
      if (n == 0) {
        return false;
      }
    }
    return true;
  });
  ASSERT_EQ(ns.thread_ops.size(), 4u);
  for (size_t t = 0; t < ns.thread_ops.size(); ++t) {
    EXPECT_GT(ns.thread_ops[t], 0u) << "reactor " << t << " never decoded a frame";
  }
  EXPECT_GE(ns.conns_accepted, 8u);
  EXPECT_GT(ns.bytes_in, 0u);
  EXPECT_GT(ns.bytes_out, 0u);
  EXPECT_GT(ns.writev_calls, 0u);

  // The same counters ride inside STATS as the "net" object (what loadgen
  // reports copy into server.net for report_check).
  auto stats = (*client)->StatsJson();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  auto doc = ParseJson(*stats);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const JsonValue* net = doc->Get("net");
  ASSERT_NE(net, nullptr) << "STATS lost the net object";
  EXPECT_EQ(net->GetUint("io_threads"), 4u);
  const JsonValue* thread_ops = net->Get("thread_ops");
  ASSERT_NE(thread_ops, nullptr);
  ASSERT_TRUE(thread_ops->is_array());
  EXPECT_EQ(thread_ops->size(), 4u);
  EXPECT_GT(net->GetUint("bytes_out"), 0u);

  (*server)->Stop();
}

// A loadgen replay against a 4-reactor server converges to exactly the oracle
// state: sharding connections across IO threads must not lose, duplicate, or
// cross-wire a single operation.
TEST(ServerNetTest, MultiReactorReplayMatchesOracle) {
  Config config;
  config.Set("source", "borg");
  config.Set("events", "3000");
  config.Set("seed", "29");
  auto trace = BuildAccessTrace(config);
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();

  ServerOptions sopts;
  sopts.shards = 2;
  sopts.io_threads = 4;
  sopts.store.engine = "mem";
  auto server = Server::Start(sopts);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  LoadgenOptions lopts;
  lopts.port = (*server)->port();
  lopts.clients = 8;
  lopts.shards = 2;
  lopts.batch_size = 16;
  lopts.pipeline_depth = 4;
  auto result = RunLoadgen(*trace, lopts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->ops_sent, trace->size());
  EXPECT_EQ(result->ops_acked, result->ops_sent);
  EXPECT_EQ(result->errors, 0u);

  // Oracle: the same trace replayed into one in-process MemStore; every
  // distinct key must agree over the wire.
  StoreOptions oracle_opts;
  oracle_opts.engine = "mem";
  auto oracle = OpenStore(oracle_opts);
  ASSERT_TRUE(oracle.ok());
  ASSERT_TRUE(ReplayTrace(*trace, oracle->get()).ok());
  std::set<std::string> keys;
  std::string key;
  for (const StateAccess& a : *trace) {
    EncodeStateKeyTo(a.key, &key);
    keys.insert(key);
  }
  auto client = Client::Connect((*server)->port(), 1);
  ASSERT_TRUE(client.ok());
  for (const std::string& k : keys) {
    std::string expect;
    std::string got;
    const Status se = (*oracle)->Get(k, &expect);
    ASSERT_TRUE(se.ok() || se.IsNotFound());
    const Status sg = (*client)->Get(k, &got);
    if (se.IsNotFound()) {
      EXPECT_TRUE(sg.IsNotFound());
    } else {
      ASSERT_TRUE(sg.ok()) << sg.ToString();
      EXPECT_EQ(got, expect);
    }
  }
  ASSERT_TRUE((*oracle)->Close().ok());

  const NetStats ns = WaitForNet(server->get(), [](const NetStats& s) {
    return s.conns_accepted >= 8 && s.bytes_out > 0;
  });
  ASSERT_EQ(ns.thread_ops.size(), 4u);
  uint64_t decoded = 0;
  for (uint64_t n : ns.thread_ops) {
    decoded += n;
  }
  EXPECT_GT(decoded, 0u);
  EXPECT_GE(ns.conns_accepted, 8u);
  (*server)->Stop();
}

// --------------------------------------------------- writev coalescing

// A deep pipelined burst decoded as one task produces one response burst, so
// the gather list submitted to writev carries many frames: the
// frames_per_writev_max gauge must show real coalescing (>1), which is the
// whole point of batching responses instead of write()-per-frame.
TEST(ServerNetTest, PipelinedResponsesCoalesceIntoOneWritev) {
  ServerOptions opts;
  opts.shards = 1;
  opts.io_threads = 1;
  opts.store.engine = "mem";
  auto server = Server::Start(opts);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  auto fd = net::TcpConnect((*server)->port());
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();
  net::FramedConn conn(*fd);

  constexpr uint32_t kBurst = 128;
  std::string out;
  for (uint32_t i = 0; i < kBurst; ++i) {
    AppendPutRequest(&out, i + 1, "coalesce-" + std::to_string(i), "v");
  }
  ASSERT_TRUE(conn.Send(out).ok());
  std::set<uint32_t> ids;
  for (uint32_t i = 0; i < kBurst; ++i) {
    Response rsp;
    ASSERT_TRUE(conn.RecvResponse(&rsp).ok());
    EXPECT_EQ(rsp.type, MsgType::kOk);
    ids.insert(rsp.id);
  }
  EXPECT_EQ(ids.size(), kBurst);

  const NetStats ns = WaitForNet(server->get(), [](const NetStats& s) {
    return s.writev_calls > 0 && s.frames_per_writev_max > 1;
  });
  EXPECT_GT(ns.writev_calls, 0u);
  EXPECT_GT(ns.frames_per_writev_max, 1u)
      << "pipelined responses went out one frame per writev";
  (*server)->Stop();
}

// ------------------------------------------------------- slow reader

// The slow-reader gauntlet: a tiny server-side send buffer, a small output
// queue cap, and a client that pipelines 2 MiB of GET responses without
// reading, then stalls. The workers must block on the output queue (stall
// time accounted), the queue must absorb bursts without growing unboundedly,
// and once the client drains, every response must arrive whole, exactly
// once, and in request order (one connection, one shard, GET-only => FIFO).
TEST(ServerNetTest, SlowReaderBackpressureKeepsFramesWholeAndOrdered) {
  constexpr size_t kValueBytes = 8 << 10;
  constexpr int kKeys = 16;
  constexpr int kRounds = 16;

  ServerOptions opts;
  opts.shards = 1;
  opts.io_threads = 1;
  opts.store.engine = "mem";
  opts.so_sndbuf = 4096;          // jam the socket with small payloads
  opts.conn_outq_limit = 16 << 10;  // cap far below one round's responses
  opts.shard_queue_limit = 4;       // so dispatch backpressure engages too
  auto server = Server::Start(opts);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  // Seed kKeys values of kValueBytes each through a well-behaved client.
  auto seeder = Client::Connect((*server)->port(), 1);
  ASSERT_TRUE(seeder.ok()) << seeder.status().ToString();
  std::vector<std::string> values(kKeys);
  for (int i = 0; i < kKeys; ++i) {
    values[i] = std::string(kValueBytes, static_cast<char>('a' + i));
    ASSERT_TRUE((*seeder)->Put("slow-" + std::to_string(i), values[i]).ok());
  }

  auto fd = net::TcpConnect((*server)->port());
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();
  net::FramedConn conn(*fd);

  // Pipeline kRounds bursts of GETs, spaced out so the reactor decodes them
  // as separate tasks, while never reading a byte of response.
  uint32_t next_id = 1;
  for (int round = 0; round < kRounds; ++round) {
    std::string burst;
    for (int i = 0; i < kKeys; ++i) {
      AppendGetRequest(&burst, next_id++, "slow-" + std::to_string(i));
    }
    ASSERT_TRUE(conn.Send(burst).ok());
    SleepMs(15);
  }
  // Stall: responses pile into the kernel buffers, then the output queue,
  // then the workers block.
  SleepMs(300);

  // Drain everything. Ids must come back strictly in request order with the
  // exact seeded payloads — no torn, dropped, duplicated, or reordered frame.
  const uint32_t total = static_cast<uint32_t>(kRounds * kKeys);
  for (uint32_t want = 1; want <= total; ++want) {
    Response rsp;
    ASSERT_TRUE(conn.RecvResponse(&rsp).ok()) << "response " << want;
    ASSERT_EQ(rsp.type, MsgType::kValue) << "response " << want;
    ASSERT_EQ(rsp.id, want) << "responses reordered on one connection";
    EXPECT_EQ(rsp.value, values[(want - 1) % kKeys]) << "torn or cross-wired value";
  }

  const NetStats ns = WaitForNet(server->get(), [](const NetStats& s) {
    return s.bytes_out >= static_cast<uint64_t>(kRounds * kKeys) * kValueBytes &&
           s.output_queue_stall_micros > 0;
  });
  EXPECT_GT(ns.output_queue_stall_micros, 0u)
      << "workers never blocked on the stalled reader";
  // Bursts larger than the cap are admitted whole (but only into an empty
  // queue), so the high-water mark is at least one burst and well below the
  // total pushed through.
  EXPECT_GE(ns.output_queue_bytes_max, opts.conn_outq_limit);
  EXPECT_LT(ns.output_queue_bytes_max, static_cast<uint64_t>(total) * kValueBytes);
  EXPECT_GE(ns.bytes_out, static_cast<uint64_t>(total) * kValueBytes);

  // The server shook off the stall completely: a fresh client works.
  auto probe = Client::Connect((*server)->port(), 1);
  ASSERT_TRUE(probe.ok());
  EXPECT_TRUE((*probe)->Ping().ok());
  (*server)->Stop();
}

// ------------------------------------------------------------ io_uring

// With use_io_uring the server must behave identically; whether the rings
// actually engage depends on the kernel, so the counters are asserted only
// when the runtime probe succeeded (the fallback path is the same code every
// other test runs).
TEST(ServerNetTest, IoUringReplayWhenKernelSupportsIt) {
  Config config;
  config.Set("source", "borg");
  config.Set("events", "2000");
  config.Set("seed", "31");
  auto trace = BuildAccessTrace(config);
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();

  ServerOptions sopts;
  sopts.shards = 2;
  sopts.io_threads = 2;
  sopts.use_io_uring = true;
  sopts.store.engine = "mem";
  auto server = Server::Start(sopts);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  LoadgenOptions lopts;
  lopts.port = (*server)->port();
  lopts.clients = 4;
  lopts.shards = 2;
  lopts.batch_size = 16;
  lopts.pipeline_depth = 4;
  auto result = RunLoadgen(*trace, lopts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->ops_acked, result->ops_sent);
  EXPECT_EQ(result->errors, 0u);

  const NetStats ns = WaitForNet(server->get(), [](const NetStats& s) {
    return s.bytes_in > 0 && s.bytes_out > 0 &&
           (s.io_uring_active ? (s.uring_enters > 0 && s.uring_sqes > 0)
                              : s.writev_calls > 0);
  });
  if (ns.io_uring_active) {
    EXPECT_GT(ns.uring_enters, 0u) << "rings active but never entered";
    EXPECT_GT(ns.uring_sqes, 0u) << "rings active but no socket op submitted";
  } else {
    // Pre-5.6 kernel (or io_uring disabled): the silent epoll fallback must
    // still have moved the traffic.
    EXPECT_GT(ns.writev_calls, 0u);
  }
  EXPECT_GT(ns.bytes_in, 0u);
  EXPECT_GT(ns.bytes_out, 0u);
  (*server)->Stop();
}

// --------------------------------------------------------- connect retry

// TcpConnectRetry bridges the boot race: a listener that appears ~100ms
// after the first connect attempt is still reached within the budget, and a
// port nobody ever listens on fails (bounded, not hanging).
TEST(ServerNetTest, ConnectRetryToleratesLateListener) {
  auto probe = net::TcpListen(0);
  ASSERT_TRUE(probe.ok()) << probe.status().ToString();
  auto port = net::TcpLocalPort(*probe);
  ASSERT_TRUE(port.ok());
  net::CloseFd(*probe);

  int listen_fd = -1;
  std::thread late([&listen_fd, port]() {
    SleepMs(100);
    auto fd = net::TcpListen(*port);
    if (fd.ok()) {
      listen_fd = *fd;
    }
  });
  auto conn = net::TcpConnectRetry(*port, /*budget_ms=*/3000);
  late.join();
  ASSERT_NE(listen_fd, -1) << "could not re-bind the probed port";
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
  net::CloseFd(*conn);
  net::CloseFd(listen_fd);

  // Nobody listening and nobody coming: the retry gives up after the budget.
  auto dead_probe = net::TcpListen(0);
  ASSERT_TRUE(dead_probe.ok());
  auto dead_port = net::TcpLocalPort(*dead_probe);
  ASSERT_TRUE(dead_port.ok());
  net::CloseFd(*dead_probe);
  auto refused = net::TcpConnectRetry(*dead_port, /*budget_ms=*/200);
  EXPECT_FALSE(refused.ok());
}

// Loadgen itself survives racing server startup: connecting with a budget
// against a server that starts shortly after the loadgen threads do.
TEST(ServerNetTest, ClientConnectBudgetBridgesServerBoot) {
  auto probe = net::TcpListen(0);
  ASSERT_TRUE(probe.ok());
  auto port = net::TcpLocalPort(*probe);
  ASSERT_TRUE(port.ok());
  net::CloseFd(*probe);

  std::unique_ptr<Server> server;
  std::thread boot([&server, port]() {
    SleepMs(100);
    ServerOptions opts;
    opts.port = *port;
    opts.shards = 1;
    opts.io_threads = 1;
    opts.store.engine = "mem";
    auto s = Server::Start(opts);
    if (s.ok()) {
      server = std::move(*s);
    }
  });
  auto client = Client::Connect(*port, /*pool_size=*/2, /*connect_budget_ms=*/3000);
  boot.join();
  ASSERT_NE(server, nullptr) << "server failed to bind the probed port";
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  EXPECT_TRUE((*client)->Ping().ok());
  server->Stop();
}

}  // namespace
}  // namespace wire
}  // namespace gadget
