// Tests for the YCSB core workload generator: proportions, distributions,
// preset workloads, and the §4 contrast with streaming traces (no deletes,
// preloaded keys, non-decreasing working set).
#include <gtest/gtest.h>

#include <map>

#include "src/analysis/metrics.h"
#include "src/ycsb/ycsb.h"

namespace gadget {
namespace {

TEST(YcsbTest, LoadPhaseInsertsAllRecords) {
  YcsbOptions opts;
  opts.record_count = 100;
  opts.operation_count = 10;
  auto w = GenerateYcsb(opts);
  ASSERT_TRUE(w.ok());
  ASSERT_EQ(w->load.size(), 100u);
  for (uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(w->load[i].op, OpType::kPut);
    EXPECT_EQ(w->load[i].key.hi, i);
  }
}

TEST(YcsbTest, ProportionsRoughlyHold) {
  YcsbOptions opts;
  opts.record_count = 1000;
  opts.operation_count = 50'000;
  opts.read_proportion = 0.7;
  opts.update_proportion = 0.3;
  auto w = GenerateYcsb(opts);
  ASSERT_TRUE(w.ok());
  OpComposition c = ComputeComposition(w->run);
  EXPECT_NEAR(c.get, 0.7, 0.02);
  EXPECT_NEAR(c.put, 0.3, 0.02);
  EXPECT_DOUBLE_EQ(c.del, 0.0);  // YCSB has no deletes (§4)
}

TEST(YcsbTest, RmwIssuesReadThenWrite) {
  YcsbOptions opts = YcsbWorkloadF();
  opts.record_count = 100;
  opts.operation_count = 1000;
  auto w = GenerateYcsb(opts);
  ASSERT_TRUE(w.ok());
  for (size_t i = 0; i + 1 < w->run.size(); ++i) {
    if (w->run[i].op == OpType::kGet && w->run[i + 1].op == OpType::kPut &&
        w->run[i].timestamp == w->run[i + 1].timestamp) {
      EXPECT_EQ(w->run[i].key, w->run[i + 1].key);  // RMW hits the same key
    }
  }
}

TEST(YcsbTest, KeysStayInDomainWithoutInserts) {
  YcsbOptions opts;
  opts.record_count = 50;
  opts.operation_count = 5000;
  auto w = GenerateYcsb(opts);
  ASSERT_TRUE(w.ok());
  for (const StateAccess& a : w->run) {
    EXPECT_LT(a.key.hi, 50u);
  }
}

TEST(YcsbTest, InsertsExtendTheFrontier) {
  YcsbOptions opts = YcsbWorkloadD();
  opts.record_count = 100;
  opts.operation_count = 10'000;
  auto w = GenerateYcsb(opts);
  ASSERT_TRUE(w.ok());
  uint64_t max_key = 0;
  for (const StateAccess& a : w->run) {
    max_key = std::max(max_key, a.key.hi);
  }
  EXPECT_GT(max_key, 100u);  // inserts went beyond the preloaded range
}

TEST(YcsbTest, LatestSkewsTowardRecentKeys) {
  YcsbOptions opts = YcsbWorkloadD();
  opts.record_count = 1000;
  opts.operation_count = 20'000;
  auto w = GenerateYcsb(opts);
  ASSERT_TRUE(w.ok());
  uint64_t recent_reads = 0, total_reads = 0;
  for (const StateAccess& a : w->run) {
    if (a.op != OpType::kGet) {
      continue;
    }
    ++total_reads;
    if (a.key.hi >= 900) {
      ++recent_reads;
    }
  }
  // The newest 10% of the initial keyspace absorbs a large share of reads.
  EXPECT_GT(static_cast<double>(recent_reads) / static_cast<double>(total_reads), 0.3);
}

TEST(YcsbTest, WorkingSetNeverShrinks) {
  // §4: "Working set sizes of YCSB workloads never decrease since YCSB does
  // not support delete operations."
  YcsbOptions opts;
  opts.record_count = 200;
  opts.operation_count = 10'000;
  auto w = GenerateYcsb(opts);
  ASSERT_TRUE(w.ok());
  OpComposition c = ComputeComposition(w->run);
  EXPECT_DOUBLE_EQ(c.del, 0.0);
}

TEST(YcsbTest, DeterministicGivenSeed) {
  YcsbOptions opts;
  opts.operation_count = 1000;
  opts.seed = 5;
  auto a = GenerateYcsb(opts);
  auto b = GenerateYcsb(opts);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->run.size(), b->run.size());
  for (size_t i = 0; i < a->run.size(); ++i) {
    EXPECT_EQ(a->run[i].key, b->run[i].key);
    EXPECT_EQ(a->run[i].op, b->run[i].op);
  }
}

TEST(YcsbTest, RejectsBadProportions) {
  YcsbOptions opts;
  opts.read_proportion = 0.9;
  opts.update_proportion = 0.9;
  EXPECT_FALSE(GenerateYcsb(opts).ok());
  YcsbOptions zero;
  zero.read_proportion = 0;
  zero.update_proportion = 0;
  EXPECT_FALSE(GenerateYcsb(zero).ok());
}

TEST(YcsbTest, SequentialDistributionCycles) {
  YcsbOptions opts;
  opts.record_count = 10;
  opts.operation_count = 30;
  opts.read_proportion = 1.0;
  opts.update_proportion = 0.0;
  opts.request_distribution = "sequential";
  auto w = GenerateYcsb(opts);
  ASSERT_TRUE(w.ok());
  for (size_t i = 0; i < w->run.size(); ++i) {
    EXPECT_EQ(w->run[i].key.hi, i % 10);
  }
}

}  // namespace
}  // namespace gadget
