// Unit tests for src/common: status, coding, crc32c, rng, histogram, config,
// file utilities.
#include <gtest/gtest.h>

#include <set>

#include "src/common/coding.h"
#include "src/common/config.h"
#include "src/common/crc32c.h"
#include "src/common/file_util.h"
#include "src/common/hash.h"
#include "src/common/histogram.h"
#include "src/common/rng.h"
#include "src/common/status.h"

namespace gadget {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, CarriesCodeAndMessage) {
  Status s = Status::NotFound("key 42");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.ToString(), "NotFound: key 42");
}

TEST(StatusTest, StatusOrValue) {
  StatusOr<int> ok(7);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 7);
  StatusOr<int> bad(Status::IoError("disk on fire"));
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsIoError());
}

TEST(CodingTest, FixedRoundTrip) {
  std::string buf;
  PutFixed32(&buf, 0xdeadbeef);
  PutFixed64(&buf, 0x0123456789abcdefULL);
  EXPECT_EQ(DecodeFixed32(buf.data()), 0xdeadbeefu);
  EXPECT_EQ(DecodeFixed64(buf.data() + 4), 0x0123456789abcdefULL);
}

TEST(CodingTest, VarintRoundTrip) {
  std::string buf;
  std::vector<uint64_t> values = {0, 1, 127, 128, 300, 1u << 20, (1ull << 40) + 5, ~0ull};
  for (uint64_t v : values) {
    PutVarint64(&buf, v);
  }
  const char* p = buf.data();
  const char* end = p + buf.size();
  for (uint64_t v : values) {
    uint64_t got = 0;
    p = GetVarint64(p, end, &got);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(got, v);
  }
  EXPECT_EQ(p, end);
}

TEST(CodingTest, VarintRejectsTruncation) {
  std::string buf;
  PutVarint32(&buf, 1u << 30);
  uint32_t v;
  EXPECT_EQ(GetVarint32(buf.data(), buf.data() + 1, &v), nullptr);
}

TEST(CodingTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  PutLengthPrefixed(&buf, "");
  PutLengthPrefixed(&buf, std::string(1000, 'x'));
  const char* p = buf.data();
  const char* end = p + buf.size();
  std::string_view s;
  p = GetLengthPrefixed(p, end, &s);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(s, "hello");
  p = GetLengthPrefixed(p, end, &s);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(s, "");
  p = GetLengthPrefixed(p, end, &s);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(s.size(), 1000u);
}

TEST(Crc32cTest, KnownVector) {
  // CRC32C("123456789") = 0xe3069283 (Castagnoli reference value).
  EXPECT_EQ(Crc32c("123456789"), 0xe3069283u);
}

TEST(Crc32cTest, MaskUnmaskInverse) {
  uint32_t crc = Crc32c("some data");
  EXPECT_EQ(UnmaskCrc(MaskCrc(crc)), crc);
  EXPECT_NE(MaskCrc(crc), crc);
}

TEST(Crc32cTest, Incremental) {
  uint32_t whole = Crc32c("hello world");
  uint32_t part = Crc32c(0, "hello ", 6);
  part = Crc32c(part, "world", 5);
  EXPECT_EQ(whole, part);
}

TEST(RngTest, DeterministicAcrossInstances) {
  Pcg32 a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU32(), b.NextU32());
  }
}

TEST(RngTest, SeedsDiffer) {
  Pcg32 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU32() == b.NextU32()) {
      ++same;
    }
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, BoundedStaysInRange) {
  Pcg32 rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
    EXPECT_LT(rng.NextBounded64(1000003), 1000003u);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Pcg32 rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, ExponentialMean) {
  Pcg32 rng(11);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    sum += rng.NextExponential(0.5);
  }
  EXPECT_NEAR(sum / n, 2.0, 0.1);
}

TEST(HistogramTest, ExactSmallValues) {
  LatencyHistogram h;
  for (uint64_t v = 0; v < 64; ++v) {
    h.Record(v);
  }
  EXPECT_EQ(h.count(), 64u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 63u);
  EXPECT_EQ(h.Percentile(50), 31u);
}

TEST(HistogramTest, PercentileApproximation) {
  LatencyHistogram h;
  for (uint64_t i = 1; i <= 100000; ++i) {
    h.Record(i);
  }
  // ~1.5% relative error budget.
  EXPECT_NEAR(static_cast<double>(h.Percentile(99)), 99000.0, 99000.0 * 0.03);
  EXPECT_NEAR(static_cast<double>(h.Percentile(50)), 50000.0, 50000.0 * 0.03);
}

TEST(HistogramTest, Merge) {
  LatencyHistogram a, b;
  a.Record(10);
  b.Record(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 1000u);
}

TEST(ConfigTest, ParsesTypedValues) {
  auto cfg = Config::ParseString(
      "# comment\n"
      "name = tumbling\n"
      "events = 1000\n"
      "rate = 2.5\n"
      "enabled = true\n"
      "\n");
  ASSERT_TRUE(cfg.ok());
  EXPECT_EQ(cfg->GetString("name"), "tumbling");
  EXPECT_EQ(cfg->GetInt("events"), 1000);
  EXPECT_DOUBLE_EQ(cfg->GetDouble("rate"), 2.5);
  EXPECT_TRUE(cfg->GetBool("enabled"));
  EXPECT_EQ(cfg->GetInt("missing", -1), -1);
}

TEST(ConfigTest, RejectsMalformedLine) {
  EXPECT_FALSE(Config::ParseString("this has no equals sign").ok());
  EXPECT_FALSE(Config::ParseString("= value with no key").ok());
}

TEST(ConfigTest, InlineCommentsAndWhitespace) {
  auto cfg = Config::ParseString("  key =  value  # trailing\n");
  ASSERT_TRUE(cfg.ok());
  EXPECT_EQ(cfg->GetString("key"), "value");
}

TEST(FileUtilTest, WriteReadRoundTrip) {
  ScopedTempDir dir;
  const std::string path = dir.path() + "/f.bin";
  std::string payload(100000, 'q');
  ASSERT_TRUE(WriteStringToFile(path, payload).ok());
  std::string back;
  ASSERT_TRUE(ReadFileToString(path, &back).ok());
  EXPECT_EQ(back, payload);
}

TEST(FileUtilTest, AppendAcrossBufferBoundary) {
  ScopedTempDir dir;
  const std::string path = dir.path() + "/big.bin";
  auto file = WritableFile::Create(path);
  ASSERT_TRUE(file.ok());
  std::string chunk(30000, 'a');
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE((*file)->Append(chunk).ok());
  }
  ASSERT_TRUE((*file)->Close().ok());
  std::string back;
  ASSERT_TRUE(ReadFileToString(path, &back).ok());
  EXPECT_EQ(back.size(), 300000u);
}

TEST(FileUtilTest, RandomAccessReads) {
  ScopedTempDir dir;
  const std::string path = dir.path() + "/ra.bin";
  ASSERT_TRUE(WriteStringToFile(path, "0123456789").ok());
  auto file = RandomAccessFile::Open(path);
  ASSERT_TRUE(file.ok());
  std::string out;
  ASSERT_TRUE((*file)->Read(3, 4, &out).ok());
  EXPECT_EQ(out, "3456");
  EXPECT_FALSE((*file)->Read(8, 5, &out).ok());  // beyond EOF
}

TEST(FileUtilTest, ScopedTempDirCleansUp) {
  std::string path;
  {
    ScopedTempDir dir;
    path = dir.path();
    ASSERT_TRUE(FileExists(path));
    ASSERT_TRUE(WriteStringToFile(path + "/x", "y").ok());
  }
  EXPECT_FALSE(FileExists(path));
}

TEST(HashTest, Determinism) {
  EXPECT_EQ(Hash64("abc"), Hash64("abc"));
  EXPECT_NE(Hash64("abc"), Hash64("abd"));
  EXPECT_NE(Hash64("abc", 1), Hash64("abc", 2));
}

TEST(HashTest, Mix64Bijective) {
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < 10000; ++i) {
    seen.insert(Mix64(i));
  }
  EXPECT_EQ(seen.size(), 10000u);
}

}  // namespace
}  // namespace gadget
