// Checkpoint/restore round-trips for every engine: a checkpoint taken
// mid-run must restore to exactly the state at the checkpoint (later writes
// absent), incomplete images must be rejected, and the LSM incremental mode
// must reuse unchanged SSTables from the previous image.
#include <gtest/gtest.h>

#include <string>

#include "src/common/file_util.h"
#include "src/stores/kvstore.h"
#include "src/stores/lsm/lsm_store.h"

namespace gadget {
namespace {

StoreOptions Options(const std::string& engine, const std::string& dir) {
  StoreOptions opts;
  opts.engine = engine;
  opts.dir = dir;
  return opts;
}

// Engines that materialize a checkpoint into a fresh store directory.
class CheckpointRoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(CheckpointRoundTripTest, RestoreMatchesCheckpointState) {
  const std::string engine = GetParam();
  ScopedTempDir dir;
  auto store = OpenStore(Options(engine, dir.path() + "/live"));
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE((*store)->Put("k" + std::to_string(i), "v" + std::to_string(i)).ok());
  }
  ASSERT_TRUE((*store)->Delete("k7").ok());

  const std::string cp = dir.path() + "/cp";
  auto info = (*store)->Checkpoint(cp);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_GT(info->bytes, 0u);
  EXPECT_GT(info->files, 0u);

  // Writes after the checkpoint must not leak into the restored image, and
  // the live store must keep working.
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE((*store)->Put("post" + std::to_string(i), "late").ok());
  }
  ASSERT_TRUE((*store)->Put("k3", "overwritten-later").ok());

  auto restored = RestoreStore(Options(engine, dir.path() + "/restored"), cp);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  std::string got;
  for (int i = 0; i < 500; ++i) {
    if (i == 7) {
      EXPECT_TRUE((*restored)->Get("k7", &got).IsNotFound());
      continue;
    }
    ASSERT_TRUE((*restored)->Get("k" + std::to_string(i), &got).ok()) << i;
    EXPECT_EQ(got, "v" + std::to_string(i)) << i;  // k3 pre-overwrite value
  }
  EXPECT_TRUE((*restored)->Get("post0", &got).IsNotFound());

  ASSERT_TRUE((*store)->Get("k3", &got).ok());
  EXPECT_EQ(got, "overwritten-later");
  ASSERT_TRUE((*restored)->Close().ok());
  ASSERT_TRUE((*store)->Close().ok());
}

TEST_P(CheckpointRoundTripTest, CheckpointIntoNonEmptyDirFails) {
  const std::string engine = GetParam();
  ScopedTempDir dir;
  auto store = OpenStore(Options(engine, dir.path() + "/live"));
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put("k", "v").ok());
  const std::string cp = dir.path() + "/cp";
  ASSERT_TRUE((*store)->Checkpoint(cp).ok());
  auto again = (*store)->Checkpoint(cp);
  EXPECT_FALSE(again.ok());
  EXPECT_TRUE(again.status().IsInvalidArgument()) << again.status().ToString();
  ASSERT_TRUE((*store)->Close().ok());
}

TEST_P(CheckpointRoundTripTest, IncompleteCheckpointIsRejected) {
  const std::string engine = GetParam();
  ScopedTempDir dir;
  auto store = OpenStore(Options(engine, dir.path() + "/live"));
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put("k", "v").ok());
  const std::string cp = dir.path() + "/cp";
  ASSERT_TRUE((*store)->Checkpoint(cp).ok());
  ASSERT_TRUE((*store)->Close().ok());
  // Simulate a checkpoint cut short before its anchor (the last file each
  // engine writes) became durable: RestoreStore must refuse the image.
  const std::string anchor = engine == std::string("lsm") || engine == std::string("lethe")
                                 ? "MANIFEST"
                             : engine == std::string("btree") ? "btree.db"
                             : engine == std::string("faster") ? "hybrid.log"
                                                               : "memstore.snap";
  ASSERT_TRUE(RemoveFile(cp + "/" + anchor).ok());
  auto restored = RestoreStore(Options(engine, dir.path() + "/restored"), cp);
  ASSERT_FALSE(restored.ok());
  EXPECT_TRUE(restored.status().IsCorruption()) << restored.status().ToString();
}

INSTANTIATE_TEST_SUITE_P(Engines, CheckpointRoundTripTest,
                         ::testing::Values("mem", "lsm", "lethe", "btree", "faster"),
                         [](const auto& spec) { return std::string(spec.param); });

TEST(CheckpointTest, RestoreFromMissingDirIsNotFound) {
  ScopedTempDir dir;
  auto restored = RestoreStore(Options("lsm", dir.path() + "/restored"), dir.path() + "/nope");
  ASSERT_FALSE(restored.ok());
  EXPECT_TRUE(restored.status().IsNotFound());
}

TEST(CheckpointTest, RestoreIntoNonEmptyDirFails) {
  ScopedTempDir dir;
  auto store = OpenStore(Options("btree", dir.path() + "/live"));
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put("k", "v").ok());
  const std::string cp = dir.path() + "/cp";
  ASSERT_TRUE((*store)->Checkpoint(cp).ok());
  ASSERT_TRUE((*store)->Close().ok());
  const std::string target = dir.path() + "/restored";
  ASSERT_TRUE(CreateDirIfMissing(target).ok());
  ASSERT_TRUE(WriteStringToFile(target + "/stray", "x").ok());
  auto restored = RestoreStore(Options("btree", target), cp);
  ASSERT_FALSE(restored.ok());
  EXPECT_TRUE(restored.status().IsInvalidArgument());
}

// LSM-specific: with a tiny write buffer the store accumulates SSTables;
// checkpoints hard-link them, and an incremental checkpoint links unchanged
// tables from the previous image instead of the store directory.
TEST(CheckpointTest, LsmIncrementalReusesUnchangedSstables) {
  ScopedTempDir dir;
  LsmOptions opts;
  opts.write_buffer_size = 16 * 1024;
  opts.l0_compaction_trigger = 100;  // keep files stable between checkpoints
  auto store = LsmStore::Open(dir.path() + "/live", opts);
  ASSERT_TRUE(store.ok());
  const std::string pad(256, 'p');
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE((*store)->Put("k" + std::to_string(i), pad + std::to_string(i)).ok());
  }
  ASSERT_TRUE((*store)->Flush().ok());

  const std::string cp1 = dir.path() + "/cp1";
  auto info1 = (*store)->Checkpoint(cp1);
  ASSERT_TRUE(info1.ok()) << info1.status().ToString();
  EXPECT_GT(info1->hard_links, 0u);  // SSTables captured by link
  EXPECT_EQ(info1->reused, 0u);      // no base image yet

  for (int i = 500; i < 700; ++i) {
    ASSERT_TRUE((*store)->Put("k" + std::to_string(i), pad + std::to_string(i)).ok());
  }
  ASSERT_TRUE((*store)->Flush().ok());

  const std::string cp2 = dir.path() + "/cp2";
  CheckpointOptions copts;
  copts.base_dir = cp1;
  auto info2 = (*store)->Checkpoint(cp2, copts);
  ASSERT_TRUE(info2.ok()) << info2.status().ToString();
  // Every SSTable from cp1 is unchanged (no compaction ran) and is linked
  // from the previous image; only the new flush's tables come from the store.
  EXPECT_GT(info2->reused, 0u);
  EXPECT_GE(info2->hard_links, info2->reused);
  ASSERT_TRUE((*store)->Close().ok());

  // The incremental image is still a complete, self-contained store.
  auto restored = RestoreStore(Options("lsm", dir.path() + "/restored"), cp2);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  std::string got;
  for (int i = 0; i < 700; i += 13) {
    ASSERT_TRUE((*restored)->Get("k" + std::to_string(i), &got).ok()) << i;
    EXPECT_EQ(got, pad + std::to_string(i));
  }
  ASSERT_TRUE((*restored)->Close().ok());
}

// The checkpoint captures the WAL tail, so un-flushed writes survive restore
// exactly like they survive a crash.
TEST(CheckpointTest, LsmCheckpointCapturesWalTail) {
  ScopedTempDir dir;
  auto store = LsmStore::Open(dir.path() + "/live", LsmOptions());
  ASSERT_TRUE(store.ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE((*store)->Put("wal" + std::to_string(i), "unflushed").ok());
  }
  // No Flush(): everything lives in the memtable + WAL only.
  const std::string cp = dir.path() + "/cp";
  auto info = (*store)->Checkpoint(cp);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  ASSERT_TRUE((*store)->Close().ok());

  auto restored = RestoreStore(Options("lsm", dir.path() + "/restored"), cp);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  std::string got;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE((*restored)->Get("wal" + std::to_string(i), &got).ok()) << i;
    EXPECT_EQ(got, "unflushed");
  }
  ASSERT_TRUE((*restored)->Close().ok());
}

// Restoring the same image twice into different targets works: the image is
// read-only with respect to restore (hard links + copies, never moves).
TEST(CheckpointTest, ImageSurvivesMultipleRestores) {
  ScopedTempDir dir;
  auto store = OpenStore(Options("lsm", dir.path() + "/live"));
  ASSERT_TRUE(store.ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE((*store)->Put("k" + std::to_string(i), "v").ok());
  }
  const std::string cp = dir.path() + "/cp";
  ASSERT_TRUE((*store)->Checkpoint(cp).ok());
  ASSERT_TRUE((*store)->Close().ok());
  for (int round = 0; round < 2; ++round) {
    auto restored =
        RestoreStore(Options("lsm", dir.path() + "/r" + std::to_string(round)), cp);
    ASSERT_TRUE(restored.ok()) << round << ": " << restored.status().ToString();
    std::string got;
    ASSERT_TRUE((*restored)->Get("k42", &got).ok());
    EXPECT_EQ(got, "v");
    ASSERT_TRUE((*restored)->Close().ok());
  }
}

}  // namespace
}  // namespace gadget
