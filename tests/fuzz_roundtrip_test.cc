// Randomized round-trip ("fuzz-lite") tests for every on-disk format, plus
// parameterized lateness sweeps for the event-time machinery. Seeds are
// fixed, so failures reproduce deterministically.
#include <gtest/gtest.h>

#include <map>

#include "src/common/file_util.h"
#include "src/common/rng.h"
#include "src/flinklet/runtime.h"
#include "src/gadget/event_generator.h"
#include "src/stores/lsm/sstable.h"
#include "src/stores/lsm/wal.h"
#include "src/streams/trace_io.h"

namespace gadget {
namespace {

std::string RandomBytes(Pcg32& rng, size_t max_len) {
  size_t len = rng.NextBounded64(max_len + 1);
  std::string out(len, '\0');
  for (char& c : out) {
    c = static_cast<char>(rng.NextU32());
  }
  return out;
}

class FormatFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(FormatFuzzTest, SstableRandomRecordsRoundTrip) {
  Pcg32 rng(static_cast<uint64_t>(GetParam()));
  ScopedTempDir dir;
  const std::string path = dir.path() + "/fuzz.sst";
  // Sorted unique random keys with random types/values.
  std::map<std::string, std::pair<RecType, std::string>> records;
  for (int i = 0; i < 400; ++i) {
    std::string key = RandomBytes(rng, 40);
    if (key.empty()) {
      key = "k";
    }
    RecType type = static_cast<RecType>(rng.NextBounded(3));
    std::string value = type == RecType::kTombstone ? "" : RandomBytes(rng, 3000);
    if (type == RecType::kMergeStack) {
      value = EncodeMergeStack({value});
    }
    records[key] = {type, value};
  }
  SSTableBuilder builder(path, 512, 10);
  for (const auto& [key, rec] : records) {
    ASSERT_TRUE(builder.Add(key, rec.first, rec.second).ok());
  }
  ASSERT_TRUE(builder.Finish().ok());

  auto reader = SSTableReader::Open(path, 1, nullptr);
  ASSERT_TRUE(reader.ok());
  // Full scan returns every record verbatim in order.
  auto it = records.begin();
  SSTableIterator iter(*reader);
  while (iter.Valid()) {
    ASSERT_NE(it, records.end());
    EXPECT_EQ(std::string(iter.key()), it->first);
    EXPECT_EQ(iter.type(), it->second.first);
    EXPECT_EQ(std::string(iter.value()), it->second.second);
    ++it;
    iter.Next();
  }
  ASSERT_TRUE(iter.status().ok());
  EXPECT_EQ(it, records.end());
  // Random point lookups agree too.
  std::string value;
  std::vector<std::string> ops;
  for (const auto& [key, rec] : records) {
    ops.clear();
    auto st = (*reader)->Get(key, &value, &ops);
    ASSERT_TRUE(st.ok());
    switch (rec.first) {
      case RecType::kValue:
        ASSERT_EQ(*st, LookupState::kFound);
        EXPECT_EQ(value, rec.second);
        break;
      case RecType::kTombstone:
        ASSERT_EQ(*st, LookupState::kDeleted);
        break;
      case RecType::kMergeStack:
        ASSERT_EQ(*st, LookupState::kMergePartial);
        break;
    }
  }
}

TEST_P(FormatFuzzTest, WalRandomRecordsRoundTrip) {
  Pcg32 rng(static_cast<uint64_t>(GetParam()) ^ 0xa5);
  ScopedTempDir dir;
  const std::string path = dir.path() + "/fuzz.wal";
  std::vector<std::tuple<RecType, std::string, std::string>> records;
  {
    auto wal = WalWriter::Create(path);
    ASSERT_TRUE(wal.ok());
    for (int i = 0; i < 300; ++i) {
      RecType type = static_cast<RecType>(rng.NextBounded(3));
      std::string key = RandomBytes(rng, 60);
      std::string value = RandomBytes(rng, 2000);
      ASSERT_TRUE((*wal)->Append(type, key, value, false).ok());
      records.emplace_back(type, key, value);
    }
    ASSERT_TRUE((*wal)->Close().ok());
  }
  size_t i = 0;
  auto replayed = ReplayWal(path, [&](RecType t, std::string_view k, std::string_view v) {
    ASSERT_LT(i, records.size());
    EXPECT_EQ(t, std::get<0>(records[i]));
    EXPECT_EQ(k, std::get<1>(records[i]));
    EXPECT_EQ(v, std::get<2>(records[i]));
    ++i;
  });
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(*replayed, records.size());
}

TEST_P(FormatFuzzTest, AccessTraceRandomRoundTrip) {
  Pcg32 rng(static_cast<uint64_t>(GetParam()) ^ 0x77);
  ScopedTempDir dir;
  std::vector<StateAccess> trace;
  uint64_t t = 0;
  for (int i = 0; i < 2000; ++i) {
    StateAccess a;
    a.op = static_cast<OpType>(rng.NextBounded(4));
    a.key = {rng.NextU64(), rng.NextU64()};
    a.value_size = rng.NextBounded(1u << 20);
    // Timestamps wander in both directions (late events).
    t = t + rng.NextBounded(1000) - std::min<uint64_t>(t, rng.NextBounded(500));
    a.timestamp = t;
    trace.push_back(a);
  }
  const std::string path = dir.path() + "/fuzz.gtrace";
  ASSERT_TRUE(WriteAccessTrace(path, trace).ok());
  auto back = ReadAccessTrace(path);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), trace.size());
  for (size_t i = 0; i < trace.size(); ++i) {
    ASSERT_EQ((*back)[i].key, trace[i].key) << i;
    ASSERT_EQ((*back)[i].op, trace[i].op) << i;
    ASSERT_EQ((*back)[i].value_size, trace[i].value_size) << i;
    ASSERT_EQ((*back)[i].timestamp, trace[i].timestamp) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FormatFuzzTest, ::testing::Values(1, 2, 3, 4),
                         [](const auto& spec) { return "seed" + std::to_string(spec.param); });

// ----------------------------------------------------- lateness properties

class LatenessSweepTest : public ::testing::TestWithParam<std::tuple<double, uint64_t>> {};

TEST_P(LatenessSweepTest, EventsNeverLostWithinAllowedLateness) {
  const auto& [ooo_fraction, lateness_ms] = GetParam();
  EventGeneratorOptions gen;
  gen.num_events = 10'000;
  gen.num_keys = 20;
  gen.out_of_order_fraction = ooo_fraction;
  gen.max_lateness_ms = lateness_ms;
  gen.arrival_process = "constant";
  gen.rate_per_sec = 1'000;
  gen.seed = 5;
  auto source = MakeEventGenerator(gen);
  ASSERT_TRUE(source.ok());
  std::vector<Event> events = CollectSource(**source);

  PipelineOptions popts;
  popts.watermark_every = 0;  // use the generator's embedded watermarks
  popts.operator_config.allowed_lateness_ms = lateness_ms;
  auto result = RunPipeline("aggregation", events, popts);
  ASSERT_TRUE(result.ok());
  // Aggregation has no windows to miss: all events counted per key.
  uint64_t total = 0;
  std::map<uint64_t, uint64_t> max_count;
  for (const OperatorOutput& out : result->outputs) {
    max_count[out.key] = std::max(max_count[out.key], out.count);
  }
  for (const auto& [key, count] : max_count) {
    total += count;
  }
  EXPECT_EQ(total, 10'000u);

  // Tumbling windows drop nothing either: the generator's watermarks lag by
  // the lateness bound, so every late event is still within allowance.
  auto windows = RunPipeline("tumbling_incr", events, popts);
  ASSERT_TRUE(windows.ok());
  uint64_t window_total = 0;
  for (const OperatorOutput& out : windows->outputs) {
    window_total += out.count;
  }
  EXPECT_EQ(window_total, 10'000u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, LatenessSweepTest,
    ::testing::Values(std::make_tuple(0.0, 0ull), std::make_tuple(0.02, 3'000ull),
                      std::make_tuple(0.2, 1'000ull), std::make_tuple(0.5, 10'000ull)),
    [](const auto& spec) {
      return "ooo" + std::to_string(static_cast<int>(std::get<0>(spec.param) * 100)) + "_late" +
             std::to_string(std::get<1>(spec.param));
    });

}  // namespace
}  // namespace gadget
