// Randomized round-trip ("fuzz-lite") tests for every on-disk format, plus
// parameterized lateness sweeps for the event-time machinery. Seeds are
// fixed, so failures reproduce deterministically.
#include <gtest/gtest.h>

#include <map>

#include "src/common/coding.h"
#include "src/common/crc32c.h"
#include "src/common/file_util.h"
#include "src/common/rng.h"
#include "src/flinklet/runtime.h"
#include "src/gadget/event_generator.h"
#include "src/stores/lsm/sstable.h"
#include "src/stores/lsm/wal.h"
#include "src/streams/trace_io.h"

namespace gadget {
namespace {

std::string RandomBytes(Pcg32& rng, size_t max_len) {
  size_t len = rng.NextBounded64(max_len + 1);
  std::string out(len, '\0');
  for (char& c : out) {
    c = static_cast<char>(rng.NextU32());
  }
  return out;
}

class FormatFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(FormatFuzzTest, SstableRandomRecordsRoundTrip) {
  Pcg32 rng(static_cast<uint64_t>(GetParam()));
  ScopedTempDir dir;
  const std::string path = dir.path() + "/fuzz.sst";
  // Sorted unique random keys with random types/values.
  std::map<std::string, std::pair<RecType, std::string>> records;
  for (int i = 0; i < 400; ++i) {
    std::string key = RandomBytes(rng, 40);
    if (key.empty()) {
      key = "k";
    }
    RecType type = static_cast<RecType>(rng.NextBounded(3));
    std::string value = type == RecType::kTombstone ? "" : RandomBytes(rng, 3000);
    if (type == RecType::kMergeStack) {
      value = EncodeMergeStack({value});
    }
    records[key] = {type, value};
  }
  SSTableBuilder builder(path, 512, 10);
  for (const auto& [key, rec] : records) {
    ASSERT_TRUE(builder.Add(key, rec.first, rec.second).ok());
  }
  ASSERT_TRUE(builder.Finish().ok());

  auto reader = SSTableReader::Open(path, 1, nullptr);
  ASSERT_TRUE(reader.ok());
  // Full scan returns every record verbatim in order.
  auto it = records.begin();
  SSTableIterator iter(*reader);
  while (iter.Valid()) {
    ASSERT_NE(it, records.end());
    EXPECT_EQ(std::string(iter.key()), it->first);
    EXPECT_EQ(iter.type(), it->second.first);
    EXPECT_EQ(std::string(iter.value()), it->second.second);
    ++it;
    iter.Next();
  }
  ASSERT_TRUE(iter.status().ok());
  EXPECT_EQ(it, records.end());
  // Random point lookups agree too.
  std::string value;
  std::vector<std::string> ops;
  for (const auto& [key, rec] : records) {
    ops.clear();
    auto st = (*reader)->Get(key, &value, &ops);
    ASSERT_TRUE(st.ok());
    switch (rec.first) {
      case RecType::kValue:
        ASSERT_EQ(*st, LookupState::kFound);
        EXPECT_EQ(value, rec.second);
        break;
      case RecType::kTombstone:
        ASSERT_EQ(*st, LookupState::kDeleted);
        break;
      case RecType::kMergeStack:
        ASSERT_EQ(*st, LookupState::kMergePartial);
        break;
    }
  }
}

TEST_P(FormatFuzzTest, WalRandomRecordsRoundTrip) {
  Pcg32 rng(static_cast<uint64_t>(GetParam()) ^ 0xa5);
  ScopedTempDir dir;
  const std::string path = dir.path() + "/fuzz.wal";
  std::vector<std::tuple<RecType, std::string, std::string>> records;
  {
    auto wal = WalWriter::Create(path);
    ASSERT_TRUE(wal.ok());
    for (int i = 0; i < 300; ++i) {
      RecType type = static_cast<RecType>(rng.NextBounded(3));
      std::string key = RandomBytes(rng, 60);
      std::string value = RandomBytes(rng, 2000);
      ASSERT_TRUE((*wal)->Append(type, key, value, false).ok());
      records.emplace_back(type, key, value);
    }
    ASSERT_TRUE((*wal)->Close().ok());
  }
  size_t i = 0;
  auto replayed = ReplayWal(path, [&](RecType t, std::string_view k, std::string_view v) {
    ASSERT_LT(i, records.size());
    EXPECT_EQ(t, std::get<0>(records[i]));
    EXPECT_EQ(k, std::get<1>(records[i]));
    EXPECT_EQ(v, std::get<2>(records[i]));
    ++i;
  });
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(*replayed, records.size());
}

TEST_P(FormatFuzzTest, AccessTraceRandomRoundTrip) {
  Pcg32 rng(static_cast<uint64_t>(GetParam()) ^ 0x77);
  ScopedTempDir dir;
  std::vector<StateAccess> trace;
  uint64_t t = 0;
  for (int i = 0; i < 2000; ++i) {
    StateAccess a;
    a.op = static_cast<OpType>(rng.NextBounded(4));
    a.key = {rng.NextU64(), rng.NextU64()};
    a.value_size = rng.NextBounded(1u << 20);
    // Timestamps wander in both directions (late events).
    t = t + rng.NextBounded(1000) - std::min<uint64_t>(t, rng.NextBounded(500));
    a.timestamp = t;
    trace.push_back(a);
  }
  const std::string path = dir.path() + "/fuzz.gtrace";
  ASSERT_TRUE(WriteAccessTrace(path, trace).ok());
  auto back = ReadAccessTrace(path);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), trace.size());
  for (size_t i = 0; i < trace.size(); ++i) {
    ASSERT_EQ((*back)[i].key, trace[i].key) << i;
    ASSERT_EQ((*back)[i].op, trace[i].op) << i;
    ASSERT_EQ((*back)[i].value_size, trace[i].value_size) << i;
    ASSERT_EQ((*back)[i].timestamp, trace[i].timestamp) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FormatFuzzTest, ::testing::Values(1, 2, 3, 4),
                         [](const auto& spec) { return "seed" + std::to_string(spec.param); });

// ------------------------------------------------------- malformed inputs
//
// Hand-crafted adversarial bytes for each on-disk decoder. These are the
// deterministic regressions for the hardening in this change: every case
// must be rejected cleanly — no crash, no out-of-bounds read, no
// attacker-sized allocation. (The fuzz/ corpus drivers cover the same
// decoders with mutated inputs; these tables pin the specific shapes.)

std::string Fixed32(uint32_t v) {
  std::string s;
  PutFixed32(&s, v);
  return s;
}

std::string Fixed64(uint64_t v) {
  std::string s;
  PutFixed64(&s, v);
  return s;
}

std::string Varint32(uint32_t v) {
  std::string s;
  PutVarint32(&s, v);
  return s;
}

TEST(MalformedSSTableTest, RejectsAdversarialFootersWithoutAllocating) {
  constexpr uint64_t kTableMagic = 0x67616467657453ULL;
  ScopedTempDir dir;
  // footer = index_off(8) index_sz(4) bloom_off(8) bloom_sz(4) entries(8) magic(8)
  auto footer = [&](uint64_t index_off, uint32_t index_sz, uint64_t bloom_off,
                    uint32_t bloom_sz, uint64_t magic) {
    return Fixed64(index_off) + Fixed32(index_sz) + Fixed64(bloom_off) +
           Fixed32(bloom_sz) + Fixed64(77) + Fixed64(magic);
  };
  struct Case {
    const char* name;
    std::string bytes;
  };
  const std::string body(64, 'b');
  const std::vector<Case> kCases = {
      {"too_small_for_footer", std::string("tiny", 4)},
      {"bad_magic", body + footer(0, 8, 8, 8, 0xdeadbeef)},
      // Claims a ~4 GiB index in a 104-byte file: must be rejected before
      // any buffer for it is allocated.
      {"huge_index_size", body + footer(0, 0xFFFFFFF0u, 0, 0, kTableMagic)},
      {"huge_bloom_size", body + footer(0, 8, 0, 0xFFFFFFF0u, kTableMagic)},
      {"index_off_past_end", body + footer(1u << 30, 8, 0, 0, kTableMagic)},
      // off + sz overflows past the body even though each fits alone.
      {"index_region_overflow", body + footer(60, 60, 0, 0, kTableMagic)},
      {"bloom_region_overflow", body + footer(0, 8, 60, 60, kTableMagic)},
  };
  for (const Case& c : kCases) {
    const std::string path = dir.path() + "/" + c.name + ".sst";
    ASSERT_TRUE(WriteStringToFile(path, c.bytes, /*sync=*/false).ok());
    auto reader = SSTableReader::Open(path, 1, nullptr);
    EXPECT_FALSE(reader.ok()) << c.name;
  }
}

TEST(MalformedSSTableTest, SearchBlockRejectsVarintLengthWrap) {
  // Entry format inside a block: varint klen | key | type | varint vlen | value.
  // klen = 0xFFFFFFFF once made `klen + 1` wrap to 0 in a 32-bit bounds
  // check, turning the compare into "always fits" and reading ~4 GiB out of
  // bounds. The fixed check does the math in 64 bits.
  struct Case {
    const char* name;
    std::string block;
  };
  const std::vector<Case> kCases = {
      {"klen_wrap", Varint32(0xFFFFFFFFu) + "abc"},
      {"klen_max_minus_padding", Varint32(0xFFFFFFF4u) + std::string(32, 'x')},
      {"klen_past_block", Varint32(200) + "short"},
      {"vlen_wrap", Varint32(1) + "k" + std::string(1, '\x01') + Varint32(0xFFFFFFFFu)},
      {"vlen_past_block",
       Varint32(1) + "k" + std::string(1, '\x01') + Varint32(99) + "v"},
      {"truncated_after_key", Varint32(1) + "k"},
  };
  for (const Case& c : kCases) {
    std::string value;
    std::vector<std::string> operands;
    auto st = SSTableReader::SearchBlock(c.block, "k", &value, &operands, c.name);
    EXPECT_FALSE(st.ok()) << c.name;
  }
}

TEST(MalformedTraceTest, RejectsHeaderAndBodyCorruption) {
  constexpr uint32_t kAccessMagic = 0x47414343;  // "GACC"
  ScopedTempDir dir;
  // header = magic(4) version(4) count(8), then body, then masked crc32c(4).
  auto trace = [&](uint32_t magic, uint32_t version, uint64_t count,
                   const std::string& body, bool good_crc) {
    uint32_t crc = MaskCrc(Crc32c(0, body.data(), body.size()));
    if (!good_crc) {
      crc ^= 0x5a5a5a5a;
    }
    return Fixed32(magic) + Fixed32(version) + Fixed64(count) + body + Fixed32(crc);
  };
  struct Case {
    const char* name;
    std::string bytes;
  };
  const std::string body(40, '\x01');
  const std::vector<Case> kCases = {
      {"truncated_header", std::string("GACC", 4)},
      {"bad_magic", trace(0x41414141, 1, 1, body, true)},
      {"bad_version", trace(kAccessMagic, 99, 1, body, true)},
      {"bad_crc", trace(kAccessMagic, 1, 1, body, false)},
      // The count-lie regression: header claims 2^60 records over a 40-byte
      // body. Before the fix ReadAccessTrace reserve()d for the claim.
      {"count_overflow", trace(kAccessMagic, 1, 1ull << 60, body, true)},
      {"count_exceeds_body", trace(kAccessMagic, 1, 1000, body, true)},
  };
  for (const Case& c : kCases) {
    const std::string path = dir.path() + "/" + c.name + ".gtrace";
    ASSERT_TRUE(WriteStringToFile(path, c.bytes, /*sync=*/false).ok());
    EXPECT_FALSE(AccessTraceReader::Open(path).ok()) << c.name;
    EXPECT_FALSE(ReadAccessTrace(path).ok()) << c.name;
  }
}

TEST(MalformedWalTest, ReplayStopsAtCorruptionKeepingPrefix) {
  ScopedTempDir dir;
  // A valid 3-record WAL with garbage appended: replay must deliver exactly
  // the valid prefix and stop — a torn tail is the normal crash shape.
  const std::string path = dir.path() + "/torn.wal";
  {
    auto wal = WalWriter::Create(path);
    ASSERT_TRUE(wal.ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(
          (*wal)->Append(RecType::kValue, "k" + std::to_string(i), "v", false).ok());
    }
    ASSERT_TRUE((*wal)->Close().ok());
  }
  std::string bytes;
  ASSERT_TRUE(ReadFileToString(path, &bytes).ok());
  bytes += std::string(25, '\xee');
  ASSERT_TRUE(WriteStringToFile(path, bytes, /*sync=*/false).ok());
  size_t applied = 0;
  auto replayed = ReplayWal(path, [&](RecType, std::string_view, std::string_view) {
    ++applied;
  });
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(applied, 3u);

  // Pure garbage: nothing applied, no crash.
  const std::string junk_path = dir.path() + "/junk.wal";
  ASSERT_TRUE(WriteStringToFile(junk_path, std::string(300, '\x7f'), false).ok());
  applied = 0;
  auto junk = ReplayWal(junk_path, [&](RecType, std::string_view, std::string_view) {
    ++applied;
  });
  if (junk.ok()) {
    EXPECT_EQ(applied, 0u);
  }
}

// ----------------------------------------------------- lateness properties

class LatenessSweepTest : public ::testing::TestWithParam<std::tuple<double, uint64_t>> {};

TEST_P(LatenessSweepTest, EventsNeverLostWithinAllowedLateness) {
  const auto& [ooo_fraction, lateness_ms] = GetParam();
  EventGeneratorOptions gen;
  gen.num_events = 10'000;
  gen.num_keys = 20;
  gen.out_of_order_fraction = ooo_fraction;
  gen.max_lateness_ms = lateness_ms;
  gen.arrival_process = "constant";
  gen.rate_per_sec = 1'000;
  gen.seed = 5;
  auto source = MakeEventGenerator(gen);
  ASSERT_TRUE(source.ok());
  std::vector<Event> events = CollectSource(**source);

  PipelineOptions popts;
  popts.watermark_every = 0;  // use the generator's embedded watermarks
  popts.operator_config.allowed_lateness_ms = lateness_ms;
  auto result = RunPipeline("aggregation", events, popts);
  ASSERT_TRUE(result.ok());
  // Aggregation has no windows to miss: all events counted per key.
  uint64_t total = 0;
  std::map<uint64_t, uint64_t> max_count;
  for (const OperatorOutput& out : result->outputs) {
    max_count[out.key] = std::max(max_count[out.key], out.count);
  }
  for (const auto& [key, count] : max_count) {
    total += count;
  }
  EXPECT_EQ(total, 10'000u);

  // Tumbling windows drop nothing either: the generator's watermarks lag by
  // the lateness bound, so every late event is still within allowance.
  auto windows = RunPipeline("tumbling_incr", events, popts);
  ASSERT_TRUE(windows.ok());
  uint64_t window_total = 0;
  for (const OperatorOutput& out : windows->outputs) {
    window_total += out.count;
  }
  EXPECT_EQ(window_total, 10'000u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, LatenessSweepTest,
    ::testing::Values(std::make_tuple(0.0, 0ull), std::make_tuple(0.02, 3'000ull),
                      std::make_tuple(0.2, 1'000ull), std::make_tuple(0.5, 10'000ull)),
    [](const auto& spec) {
      return "ooo" + std::to_string(static_cast<int>(std::get<0>(spec.param) * 100)) + "_late" +
             std::to_string(std::get<1>(spec.param));
    });

}  // namespace
}  // namespace gadget
