// Unit tests for LSM internals: bloom filter, buffer pool plumbing, memtable,
// SSTable builder/reader/iterator, WAL, manifest.
#include <gtest/gtest.h>

#include "src/common/file_util.h"
#include "src/stores/bufferpool/buffer_pool.h"
#include "src/stores/lsm/bloom.h"
#include "src/stores/lsm/memtable.h"
#include "src/stores/lsm/sstable.h"
#include "src/stores/lsm/version.h"
#include "src/stores/lsm/wal.h"

namespace gadget {
namespace {

// -------------------------------------------------------------------- bloom

TEST(BloomTest, NoFalseNegatives) {
  BloomFilterBuilder builder(10);
  for (int i = 0; i < 1000; ++i) {
    builder.AddKey("key" + std::to_string(i));
  }
  std::string filter = builder.Finish();
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(BloomFilterMayContain(filter, "key" + std::to_string(i)));
  }
}

TEST(BloomTest, LowFalsePositiveRate) {
  BloomFilterBuilder builder(10);
  for (int i = 0; i < 10000; ++i) {
    builder.AddKey("key" + std::to_string(i));
  }
  std::string filter = builder.Finish();
  int fp = 0;
  for (int i = 0; i < 10000; ++i) {
    if (BloomFilterMayContain(filter, "absent" + std::to_string(i))) {
      ++fp;
    }
  }
  // 10 bits/key should give ~1% FPR; allow 3%.
  EXPECT_LT(fp, 300);
}

TEST(BloomTest, EmptyFilterIsSafe) {
  BloomFilterBuilder builder(10);
  std::string filter = builder.Finish();
  // No keys added: any answer is allowed but must not crash; degenerate
  // filters answer true.
  // result intentionally ignored: only exercising that the probe is safe.
  (void)BloomFilterMayContain(filter, "x");
  EXPECT_TRUE(BloomFilterMayContain("", "x"));
}

// -------------------------------------------------------------- buffer pool

TEST(BufferPoolCacheTest, HitAfterInsert) {
  BufferPool pool;
  pool.InsertBlock(1, 0, "hello");
  PinnedBlock h = pool.Lookup(1, 0);
  ASSERT_TRUE(static_cast<bool>(h));
  EXPECT_EQ(h.data(), "hello");
  EXPECT_EQ(pool.hits(), 1u);
}

TEST(BufferPoolCacheTest, EvictsUnderPressure) {
  BufferPool pool(BufferPoolOptions{.capacity_bytes = 8 * 1024, .shards = 8});
  for (uint64_t i = 0; i < 1000; ++i) {
    pool.InsertBlock(1, i * 4096, std::string(512, 'x'));
  }
  int present = 0;
  for (uint64_t i = 0; i < 1000; ++i) {
    if (pool.Lookup(1, i * 4096)) {
      ++present;
    }
  }
  EXPECT_LT(present, 64);  // most were evicted
  EXPECT_GT(present, 0);   // but the most recent stayed
}

TEST(BufferPoolCacheTest, EraseFileDropsBlocks) {
  BufferPool pool;
  pool.InsertBlock(7, 0, "a");
  pool.InsertBlock(7, 4096, "b");
  pool.InsertBlock(8, 0, "c");
  pool.EraseFile(7);
  EXPECT_FALSE(pool.Lookup(7, 0));
  EXPECT_FALSE(pool.Lookup(7, 4096));
  EXPECT_TRUE(static_cast<bool>(pool.Lookup(8, 0)));
}

// ----------------------------------------------------------------- memtable

TEST(MemTableTest, PutGet) {
  MemTable mem;
  mem.Put("a", "1");
  std::string value;
  std::vector<std::string> ops;
  EXPECT_EQ(mem.Get("a", &value, &ops), LookupState::kFound);
  EXPECT_EQ(value, "1");
  EXPECT_EQ(mem.Get("b", &value, &ops), LookupState::kNotFound);
}

TEST(MemTableTest, DeleteShadowsPut) {
  MemTable mem;
  mem.Put("a", "1");
  mem.Delete("a");
  std::string value;
  std::vector<std::string> ops;
  EXPECT_EQ(mem.Get("a", &value, &ops), LookupState::kDeleted);
}

TEST(MemTableTest, MergeOnBaseCollapses) {
  MemTable mem;
  mem.Put("a", "base");
  mem.Merge("a", "+1");
  mem.Merge("a", "+2");
  std::string value;
  std::vector<std::string> ops;
  EXPECT_EQ(mem.Get("a", &value, &ops), LookupState::kFound);
  EXPECT_EQ(value, "base+1+2");
}

TEST(MemTableTest, MergeWithoutBaseIsPartial) {
  MemTable mem;
  mem.Merge("a", "x");
  mem.Merge("a", "y");
  std::string value;
  std::vector<std::string> ops;
  EXPECT_EQ(mem.Get("a", &value, &ops), LookupState::kMergePartial);
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_EQ(ops[0], "x");
  EXPECT_EQ(ops[1], "y");
}

TEST(MemTableTest, MergeAfterDelete) {
  MemTable mem;
  mem.Put("a", "old");
  mem.Delete("a");
  mem.Merge("a", "new");
  std::string value;
  std::vector<std::string> ops;
  EXPECT_EQ(mem.Get("a", &value, &ops), LookupState::kFound);
  EXPECT_EQ(value, "new");
}

TEST(MemTableTest, FlushRecordTypes) {
  MemTable mem;
  mem.Put("full", "v");
  mem.Delete("gone");
  mem.Merge("lazy", "op");
  mem.Put("merged", "v");
  mem.Merge("merged", "+");
  std::map<std::string, std::pair<RecType, std::string>> records;
  mem.ForEachFlushRecord([&](const MemTable::FlushRecord& rec) {
    records[std::string(rec.key)] = {rec.type, rec.value};
  });
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records["full"].first, RecType::kValue);
  EXPECT_EQ(records["gone"].first, RecType::kTombstone);
  EXPECT_EQ(records["lazy"].first, RecType::kMergeStack);
  EXPECT_EQ(records["merged"].first, RecType::kValue);
  EXPECT_EQ(records["merged"].second, "v+");
}

TEST(MemTableTest, ByteAccountingGrows) {
  MemTable mem;
  uint64_t before = mem.ApproximateBytes();
  mem.Put("key", std::string(1000, 'v'));
  EXPECT_GT(mem.ApproximateBytes(), before + 900);
}

// ------------------------------------------------------------------ sstable

TEST(SSTableTest, BuildAndPointGet) {
  ScopedTempDir dir;
  const std::string path = dir.path() + "/1.sst";
  SSTableBuilder builder(path, 4096, 10);
  for (int i = 0; i < 1000; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "key%06d", i);
    ASSERT_TRUE(builder.Add(key, RecType::kValue, "value" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(builder.Finish().ok());
  EXPECT_EQ(builder.num_entries(), 1000u);
  EXPECT_EQ(builder.smallest(), "key000000");
  EXPECT_EQ(builder.largest(), "key000999");

  BufferPool pool;
  auto reader = SSTableReader::Open(path, 1, &pool);
  ASSERT_TRUE(reader.ok());
  std::string value;
  std::vector<std::string> ops;
  for (int i = 0; i < 1000; i += 37) {
    char key[16];
    std::snprintf(key, sizeof(key), "key%06d", i);
    auto st = (*reader)->Get(key, &value, &ops);
    ASSERT_TRUE(st.ok());
    ASSERT_EQ(*st, LookupState::kFound) << key;
    EXPECT_EQ(value, "value" + std::to_string(i));
  }
  auto miss = (*reader)->Get("key9999999", &value, &ops);
  ASSERT_TRUE(miss.ok());
  EXPECT_EQ(*miss, LookupState::kNotFound);
}

TEST(SSTableTest, TombstoneAndMergeRecords) {
  ScopedTempDir dir;
  const std::string path = dir.path() + "/2.sst";
  SSTableBuilder builder(path, 4096, 10);
  ASSERT_TRUE(builder.Add("a", RecType::kMergeStack, EncodeMergeStack({"x", "y"})).ok());
  ASSERT_TRUE(builder.Add("b", RecType::kTombstone, "").ok());
  ASSERT_TRUE(builder.Finish().ok());
  EXPECT_EQ(builder.num_tombstones(), 1u);

  auto reader = SSTableReader::Open(path, 2, nullptr);
  ASSERT_TRUE(reader.ok());
  std::string value;
  std::vector<std::string> ops;
  auto st = (*reader)->Get("a", &value, &ops);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(*st, LookupState::kMergePartial);
  EXPECT_EQ(ops, (std::vector<std::string>{"x", "y"}));
  st = (*reader)->Get("b", &value, &ops);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(*st, LookupState::kDeleted);
}

TEST(SSTableTest, RejectsOutOfOrderKeys) {
  ScopedTempDir dir;
  SSTableBuilder builder(dir.path() + "/3.sst", 4096, 10);
  ASSERT_TRUE(builder.Add("b", RecType::kValue, "1").ok());
  EXPECT_FALSE(builder.Add("a", RecType::kValue, "2").ok());
  EXPECT_FALSE(builder.Add("b", RecType::kValue, "3").ok());  // duplicates too
}

TEST(SSTableTest, IteratorSeesAllRecordsInOrder) {
  ScopedTempDir dir;
  const std::string path = dir.path() + "/4.sst";
  SSTableBuilder builder(path, 256, 10);  // small blocks force many blocks
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%05d", i);
    ASSERT_TRUE(builder.Add(key, RecType::kValue, std::string(20, 'v')).ok());
  }
  ASSERT_TRUE(builder.Finish().ok());
  auto reader = SSTableReader::Open(path, 4, nullptr);
  ASSERT_TRUE(reader.ok());
  SSTableIterator it(*reader);
  int count = 0;
  std::string prev;
  while (it.Valid()) {
    EXPECT_GT(std::string(it.key()), prev);
    prev = std::string(it.key());
    ++count;
    it.Next();
  }
  ASSERT_TRUE(it.status().ok());
  EXPECT_EQ(count, n);
}

TEST(SSTableTest, LargeValuesSpanBlocks) {
  ScopedTempDir dir;
  const std::string path = dir.path() + "/5.sst";
  SSTableBuilder builder(path, 4096, 10);
  std::string big(100000, 'B');
  ASSERT_TRUE(builder.Add("big", RecType::kValue, big).ok());
  ASSERT_TRUE(builder.Add("small", RecType::kValue, "s").ok());
  ASSERT_TRUE(builder.Finish().ok());
  auto reader = SSTableReader::Open(path, 5, nullptr);
  ASSERT_TRUE(reader.ok());
  std::string value;
  std::vector<std::string> ops;
  auto st = (*reader)->Get("big", &value, &ops);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(*st, LookupState::kFound);
  EXPECT_EQ(value, big);
}

TEST(SSTableTest, CorruptBlockDetected) {
  ScopedTempDir dir;
  const std::string path = dir.path() + "/6.sst";
  SSTableBuilder builder(path, 4096, 10);
  ASSERT_TRUE(builder.Add("k", RecType::kValue, std::string(100, 'v')).ok());
  ASSERT_TRUE(builder.Finish().ok());
  std::string raw;
  ASSERT_TRUE(ReadFileToString(path, &raw).ok());
  raw[10] ^= 0x01;  // corrupt the data block
  ASSERT_TRUE(WriteStringToFile(path, raw).ok());
  auto reader = SSTableReader::Open(path, 6, nullptr);
  ASSERT_TRUE(reader.ok());  // footer/index still fine
  std::string value;
  std::vector<std::string> ops;
  auto st = (*reader)->Get("k", &value, &ops);
  EXPECT_FALSE(st.ok());
}

// ---------------------------------------------------------------------- wal

TEST(WalTest, ReplayRoundTrip) {
  ScopedTempDir dir;
  const std::string path = dir.path() + "/wal.log";
  {
    auto wal = WalWriter::Create(path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(RecType::kValue, "k1", "v1", false).ok());
    ASSERT_TRUE((*wal)->Append(RecType::kMergeStack, "k2", "op", false).ok());
    ASSERT_TRUE((*wal)->Append(RecType::kTombstone, "k3", "", false).ok());
    ASSERT_TRUE((*wal)->Close().ok());
  }
  std::vector<std::tuple<RecType, std::string, std::string>> records;
  auto n = ReplayWal(path, [&](RecType t, std::string_view k, std::string_view v) {
    records.emplace_back(t, std::string(k), std::string(v));
  });
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 3u);
  EXPECT_EQ(records[0], std::make_tuple(RecType::kValue, std::string("k1"), std::string("v1")));
  EXPECT_EQ(records[2], std::make_tuple(RecType::kTombstone, std::string("k3"), std::string()));
}

TEST(WalTest, TornTailStopsCleanly) {
  ScopedTempDir dir;
  const std::string path = dir.path() + "/wal.log";
  {
    auto wal = WalWriter::Create(path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(RecType::kValue, "k1", "v1", false).ok());
    ASSERT_TRUE((*wal)->Append(RecType::kValue, "k2", "v2", false).ok());
    ASSERT_TRUE((*wal)->Close().ok());
  }
  std::string raw;
  ASSERT_TRUE(ReadFileToString(path, &raw).ok());
  raw.resize(raw.size() - 3);  // simulate a crash mid-record
  ASSERT_TRUE(WriteStringToFile(path, raw).ok());
  int count = 0;
  auto n = ReplayWal(path, [&](RecType, std::string_view, std::string_view) { ++count; });
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1u);  // first record survives, torn second is skipped
}

// ----------------------------------------------------------------- manifest

TEST(ManifestTest, SaveLoadRoundTrip) {
  ScopedTempDir dir;
  ManifestData data;
  data.next_file_number = 42;
  data.wal_numbers = {7, 11};  // two live generations: imm queue + active
  data.files.push_back({0, 3, 1000, 50, 5, 12345, std::string("\x00\x01", 2), "zz"});
  data.files.push_back({2, 9, 2000, 99, 0, 777, "a", "m"});
  ASSERT_TRUE(SaveManifest(dir.path(), data).ok());
  auto back = LoadManifest(dir.path());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->next_file_number, 42u);
  EXPECT_EQ(back->wal_numbers, (std::vector<uint64_t>{7, 11}));
  ASSERT_EQ(back->files.size(), 2u);
  EXPECT_EQ(back->files[0].level, 0);
  EXPECT_EQ(back->files[0].smallest, std::string("\x00\x01", 2));
  EXPECT_EQ(back->files[1].largest, "m");
}

TEST(ManifestTest, MissingManifestIsNotFound) {
  ScopedTempDir dir;
  auto result = LoadManifest(dir.path());
  EXPECT_TRUE(result.status().IsNotFound());
}

}  // namespace
}  // namespace gadget
