// Tests for the config-driven harness behind the `gadget` CLI: all modes,
// config validation, and trace-file interop between modes.
#include <gtest/gtest.h>

#include <sstream>

#include "src/common/file_util.h"
#include "src/gadget/harness.h"

namespace gadget {
namespace {

Config Parse(const std::string& text) {
  auto config = Config::ParseString(text);
  EXPECT_TRUE(config.ok());
  return *config;
}

TEST(HarnessTest, OnlineModeEndToEnd) {
  std::ostringstream out;
  Status s = RunHarness(Parse("mode = online\n"
                              "operator = tumbling_incr\n"
                              "events = 5000\n"
                              "store = mem\n"),
                        out);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_NE(out.str().find("operator tumbling_incr"), std::string::npos);
  EXPECT_NE(out.str().find("mem:"), std::string::npos);
}

TEST(HarnessTest, AnalyzeFlagAddsMetrics) {
  std::ostringstream out;
  Status s = RunHarness(Parse("events = 3000\nstore = mem\nanalyze = true\n"), out);
  ASSERT_TRUE(s.ok());
  EXPECT_NE(out.str().find("temporal locality"), std::string::npos);
  EXPECT_NE(out.str().find("cache sizing"), std::string::npos);
  EXPECT_NE(out.str().find("prefetchability"), std::string::npos);
}

TEST(HarnessTest, OfflineThenReplayRoundTrip) {
  ScopedTempDir dir;
  const std::string trace = dir.path() + "/t.gtrace";
  std::ostringstream out1;
  Status s = RunHarness(Parse("mode = offline\n"
                              "operator = sliding_incr\n"
                              "events = 4000\n"
                              "trace_out = " + trace + "\n"),
                        out1);
  ASSERT_TRUE(s.ok()) << s.ToString();
  ASSERT_TRUE(FileExists(trace));

  std::ostringstream out2;
  s = RunHarness(Parse("mode = replay\nstore = mem\ntrace_in = " + trace + "\n"), out2);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_NE(out2.str().find("loaded"), std::string::npos);
}

TEST(HarnessTest, AnalyzeModeReadsTraceFile) {
  ScopedTempDir dir;
  const std::string trace = dir.path() + "/t.gtrace";
  std::ostringstream out1;
  ASSERT_TRUE(RunHarness(Parse("mode = offline\nevents = 2000\ntrace_out = " + trace + "\n"),
                         out1)
                  .ok());
  std::ostringstream out2;
  Status s = RunHarness(Parse("mode = analyze\ntrace_in = " + trace + "\n"), out2);
  ASSERT_TRUE(s.ok());
  EXPECT_NE(out2.str().find("composition"), std::string::npos);
}

TEST(HarnessTest, YcsbMode) {
  std::ostringstream out;
  Status s = RunHarness(Parse("mode = ycsb\n"
                              "ycsb_workload = A\n"
                              "ycsb_records = 100\n"
                              "events = 5000\n"
                              "store = mem\n"),
                        out);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_NE(out.str().find("ycsb workload A"), std::string::npos);
}

TEST(HarnessTest, DatasetSource) {
  std::ostringstream out;
  Status s = RunHarness(Parse("source = taxi\n"
                              "operator = join_cont\n"
                              "events = 4000\n"
                              "store = mem\n"),
                        out);
  ASSERT_TRUE(s.ok()) << s.ToString();
}

TEST(HarnessTest, ValidationErrors) {
  std::ostringstream out;
  EXPECT_TRUE(RunHarness(Parse("mode = dance\n"), out).IsInvalidArgument());
  EXPECT_TRUE(RunHarness(Parse("mode = offline\n"), out).IsInvalidArgument());  // no trace_out
  EXPECT_TRUE(RunHarness(Parse("mode = replay\n"), out).IsInvalidArgument());   // no trace_in
  EXPECT_TRUE(RunHarness(Parse("mode = ycsb\nycsb_workload = Z\n"), out).IsInvalidArgument());
  EXPECT_TRUE(RunHarness(Parse("operator = quantum_window\nstore = mem\n"), out)
                  .IsInvalidArgument());
  EXPECT_FALSE(RunHarness(Parse("store = papyrus\nevents = 100\n"), out).ok());
}

TEST(HarnessTest, OperatorConfigKeysAreApplied) {
  // A 1-hour window over a short stream never fires before the final
  // watermark -> exactly one delete per (key, window) at flush; with the
  // default 5s window there would be many more windows. Compare trace sizes.
  std::ostringstream out_small, out_large;
  ASSERT_TRUE(RunHarness(Parse("events = 3000\nstore = mem\nwindow_length_ms = 1000\n"),
                         out_small)
                  .ok());
  ASSERT_TRUE(RunHarness(Parse("events = 3000\nstore = mem\nwindow_length_ms = 3600000\n"),
                         out_large)
                  .ok());
  // Different window lengths must change the generated workload size
  // (more firings -> more accesses).
  EXPECT_NE(out_small.str(), out_large.str());
}

}  // namespace
}  // namespace gadget
