// Tests for the pipelined LSM write path: the immutable-memtable queue (a
// Put never flushes inline), read correctness across memtable layers,
// cross-writer WAL group commit, graduated backpressure counters, and
// parallel subcompactions.
#include <gtest/gtest.h>

#include <map>
#include <thread>

#include "src/common/file_util.h"
#include "src/common/rng.h"
#include "src/stores/lsm/lsm_store.h"

namespace gadget {
namespace {

LsmOptions PipelineOptions() {
  LsmOptions opts;
  opts.write_buffer_size = 8 * 1024;
  opts.max_bytes_level_base = 128 * 1024;
  opts.target_file_size = 16 * 1024;
  opts.max_immutable_memtables = 4;
  return opts;
}

LsmStore* AsLsm(const StatusOr<std::unique_ptr<KVStore>>& store) {
  return static_cast<LsmStore*>(store->get());
}

// Fills the store until `n` memtables have been sealed onto the immutable
// queue. Requires the flusher paused and n < max_immutable_memtables.
void SealMemtables(KVStore* store, LsmStore* lsm, size_t n, const std::string& tag,
                   std::map<std::string, std::string>* expected) {
  const std::string value(512, 'v');
  for (int i = 0; lsm->TEST_NumImmutables() < n; ++i) {
    ASSERT_LT(i, 10'000) << "memtable never sealed";
    std::string key = tag + std::to_string(i);
    ASSERT_TRUE(store->Put(key, value).ok());
    (*expected)[key] = value;
  }
}

TEST(LsmPipelineTest, PutNeverFlushesInline) {
  ScopedTempDir dir;
  auto store = LsmStore::Open(dir.path(), PipelineOptions());
  ASSERT_TRUE(store.ok());
  auto* lsm = AsLsm(store);
  lsm->TEST_PauseFlusher(true);

  std::map<std::string, std::string> expected;
  SealMemtables(store->get(), lsm, 3, "seal", &expected);

  // Three memtables were sealed but the flusher is held: every Put above
  // returned without building an SSTable.
  EXPECT_EQ(lsm->TEST_NumImmutables(), 3u);
  EXPECT_EQ(lsm->NumFilesAtLevel(0), 0);
  EXPECT_EQ(lsm->stats().flushes, 0u);

  // Reads see all layers while the queue is held.
  for (const auto& [key, value] : expected) {
    std::string got;
    ASSERT_TRUE((*store)->Get(key, &got).ok()) << key;
    EXPECT_EQ(got, value);
  }

  // Release the flusher: the queue drains oldest-first into L0.
  lsm->TEST_PauseFlusher(false);
  ASSERT_TRUE((*store)->Flush().ok());
  EXPECT_EQ(lsm->TEST_NumImmutables(), 0u);
  EXPECT_GT(lsm->NumFilesAtLevel(0) + lsm->NumFilesAtLevel(1), 0);
  for (const auto& [key, value] : expected) {
    std::string got;
    ASSERT_TRUE((*store)->Get(key, &got).ok()) << key;
    EXPECT_EQ(got, value);
  }
  ASSERT_TRUE((*store)->Close().ok());
}

TEST(LsmPipelineTest, ReadsResolveAcrossMemtableLayers) {
  ScopedTempDir dir;
  auto store = LsmStore::Open(dir.path(), PipelineOptions());
  ASSERT_TRUE(store.ok());
  auto* lsm = AsLsm(store);
  lsm->TEST_PauseFlusher(true);

  // Layer 0 (oldest, sealed): base value + first operand; a key that will be
  // deleted later; a key that will be overwritten later.
  ASSERT_TRUE((*store)->Put("merge-key", "base").ok());
  ASSERT_TRUE((*store)->Merge("merge-key", "+a").ok());
  ASSERT_TRUE((*store)->Put("dead-key", "soon gone").ok());
  ASSERT_TRUE((*store)->Put("over-key", "old").ok());
  ASSERT_TRUE((*store)->Merge("orphan", "+1").ok());
  std::map<std::string, std::string> filler;
  SealMemtables(store->get(), lsm, 1, "fill-a", &filler);

  // Layer 1 (sealed): operand only, delete, overwrite.
  ASSERT_TRUE((*store)->Merge("merge-key", "+b").ok());
  ASSERT_TRUE((*store)->Delete("dead-key").ok());
  ASSERT_TRUE((*store)->Put("over-key", "new").ok());
  ASSERT_TRUE((*store)->Merge("orphan", "+2").ok());
  SealMemtables(store->get(), lsm, 2, "fill-b", &filler);

  // Active layer: one more operand.
  ASSERT_TRUE((*store)->Merge("merge-key", "+c").ok());

  auto verify = [&] {
    std::string got;
    ASSERT_TRUE((*store)->Get("merge-key", &got).ok());
    EXPECT_EQ(got, "base+a+b+c");  // operands in write order across layers
    EXPECT_TRUE((*store)->Get("dead-key", &got).IsNotFound());
    ASSERT_TRUE((*store)->Get("over-key", &got).ok());
    EXPECT_EQ(got, "new");
    ASSERT_TRUE((*store)->Get("orphan", &got).ok());
    EXPECT_EQ(got, "+1+2");  // operands with no base anywhere
  };
  verify();

  // Same answers after the queue drains into SSTables.
  lsm->TEST_PauseFlusher(false);
  ASSERT_TRUE((*store)->Flush().ok());
  verify();
  ASSERT_TRUE((*store)->Close().ok());
}

TEST(LsmPipelineTest, BatchIsOneWalGroupRecord) {
  ScopedTempDir dir;
  auto store = LsmStore::Open(dir.path(), PipelineOptions());
  ASSERT_TRUE(store.ok());
  WriteBatch batch;
  for (int i = 0; i < 7; ++i) {
    batch.Put("b" + std::to_string(i), "v" + std::to_string(i));
  }
  ASSERT_TRUE((*store)->Write(batch).ok());
  // The whole batch went through the commit queue as one group of 7 ops.
  EXPECT_GE((*store)->stats().wal_group_size_max, 7u);
  ASSERT_TRUE((*store)->Close().ok());
}

TEST(LsmPipelineTest, ConcurrentWritersGroupCommit) {
  ScopedTempDir dir;
  LsmOptions opts = PipelineOptions();
  opts.write_buffer_size = 256 * 1024;  // keep the test in the WAL/memtable
  opts.sync_writes = true;              // a slow leader lets followers pile up
  auto store = LsmStore::Open(dir.path(), opts);
  ASSERT_TRUE(store.ok());

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 400;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        std::string key = "t" + std::to_string(t) + "-" + std::to_string(i);
        ASSERT_TRUE((*store)->Put(key, "val" + std::to_string(i)).ok());
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }

  StoreStats stats = (*store)->stats();
  EXPECT_EQ(stats.puts, static_cast<uint64_t>(kThreads * kOpsPerThread));
  // With 8 writers racing a syncing leader, at least one append must have
  // carried two or more writers.
  EXPECT_GT(stats.wal_group_commits, 0u);
  EXPECT_GE(stats.wal_group_size_max, 2u);
  // Fewer fsyncs than logical writes is the whole point of group commit.
  EXPECT_LT(stats.wal_fsyncs, stats.puts);

  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kOpsPerThread; i += 37) {
      std::string got;
      std::string key = "t" + std::to_string(t) + "-" + std::to_string(i);
      ASSERT_TRUE((*store)->Get(key, &got).ok()) << key;
      EXPECT_EQ(got, "val" + std::to_string(i));
    }
  }
  ASSERT_TRUE((*store)->Close().ok());
}

TEST(LsmPipelineTest, SlowdownTierTriggersBeforeStall) {
  ScopedTempDir dir;
  LsmOptions opts = PipelineOptions();
  opts.l0_compaction_trigger = 64;  // keep compaction out of the picture
  opts.l0_slowdown_limit = 1;       // slow down as soon as one L0 file exists
  opts.l0_stall_limit = 1000;       // never hard-stall on L0
  auto store = LsmStore::Open(dir.path(), opts);
  ASSERT_TRUE(store.ok());
  std::string value(1024, 'x');
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE((*store)->Put("key" + std::to_string(i), value).ok()) << i;
  }
  ASSERT_TRUE((*store)->Flush().ok());
  StoreStats stats = (*store)->stats();
  EXPECT_GT(stats.slowdown_micros, 0u);
  ASSERT_TRUE((*store)->Close().ok());
}

TEST(LsmPipelineTest, FullImmutableQueueStallsWriters) {
  ScopedTempDir dir;
  LsmOptions opts = PipelineOptions();
  opts.max_immutable_memtables = 2;
  auto store = LsmStore::Open(dir.path(), opts);
  ASSERT_TRUE(store.ok());
  auto* lsm = AsLsm(store);
  lsm->TEST_PauseFlusher(true);
  std::map<std::string, std::string> expected;
  SealMemtables(store->get(), lsm, 2, "seal", &expected);

  // The queue is at capacity; the next memtable-filling write must block in
  // the stall tier until the flusher is released.
  std::thread unpauser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    lsm->TEST_PauseFlusher(false);
  });
  const std::string value(512, 'v');
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE((*store)->Put("post" + std::to_string(i), value).ok()) << i;
  }
  unpauser.join();
  EXPECT_GT((*store)->stats().stall_micros, 0u);
  ASSERT_TRUE((*store)->Close().ok());
}

TEST(LsmPipelineTest, ParallelSubcompactionsPreserveData) {
  ScopedTempDir dir;
  LsmOptions opts = PipelineOptions();
  opts.compaction_threads = 4;
  opts.l0_compaction_trigger = 2;
  auto store = LsmStore::Open(dir.path(), opts);
  ASSERT_TRUE(store.ok());

  // Overwrites, deletes, and merge stacks churned through enough flushes
  // that multi-input compactions (and their sub-range splits) must run.
  std::map<std::string, std::string> expected;
  Pcg32 rng(29);
  for (int i = 0; i < 6000; ++i) {
    std::string key = "k" + std::to_string(rng.NextBounded(500));
    uint32_t dice = rng.NextBounded(10);
    if (dice < 7) {
      std::string value = "v" + std::to_string(i);
      ASSERT_TRUE((*store)->Put(key, value).ok());
      expected[key] = value;
    } else if (dice < 9) {
      ASSERT_TRUE((*store)->Merge(key, "+m").ok());
      expected[key] += "+m";
    } else {
      ASSERT_TRUE((*store)->Delete(key).ok());
      expected.erase(key);
    }
  }
  ASSERT_TRUE((*store)->Flush().ok());
  StoreStats stats = (*store)->stats();
  EXPECT_GT(stats.compactions, 0u);

  for (const auto& [key, value] : expected) {
    std::string got;
    ASSERT_TRUE((*store)->Get(key, &got).ok()) << key;
    EXPECT_EQ(got, value) << key;
  }
  for (int i = 0; i < 500; ++i) {
    std::string key = "k" + std::to_string(i);
    if (expected.count(key)) {
      continue;
    }
    std::string got;
    EXPECT_TRUE((*store)->Get(key, &got).IsNotFound()) << key;
  }
  ASSERT_TRUE((*store)->Close().ok());
}

TEST(LsmPipelineTest, SynchronousModeStillWorks) {
  // max_immutable_memtables == 0: the writer that fills a memtable waits for
  // the flush, like the pre-pipeline engine.
  ScopedTempDir dir;
  LsmOptions opts = PipelineOptions();
  opts.max_immutable_memtables = 0;
  auto store = LsmStore::Open(dir.path(), opts);
  ASSERT_TRUE(store.ok());
  std::string value(512, 'v');
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE((*store)->Put("s" + std::to_string(i), value).ok()) << i;
  }
  auto* lsm = AsLsm(store);
  EXPECT_GT((*store)->stats().flushes, 0u);
  EXPECT_LE(lsm->TEST_NumImmutables(), 1u);
  for (int i = 0; i < 300; i += 17) {
    std::string got;
    ASSERT_TRUE((*store)->Get("s" + std::to_string(i), &got).ok()) << i;
    EXPECT_EQ(got, value);
  }
  ASSERT_TRUE((*store)->Close().ok());
}

}  // namespace
}  // namespace gadget
