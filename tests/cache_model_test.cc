// Tests for the cache-model extensions (miss-ratio curves, cache sizing,
// prefetch simulation) built on the §3.2.3 locality metrics.
#include <gtest/gtest.h>

#include "src/analysis/cache_model.h"
#include "src/analysis/metrics.h"

namespace gadget {
namespace {

StateAccess Acc(uint64_t key) { return StateAccess{OpType::kGet, StateKey{key, 0}, 0, 0}; }

std::vector<StateAccess> Loop(uint64_t keys, int rounds) {
  std::vector<StateAccess> trace;
  for (int r = 0; r < rounds; ++r) {
    for (uint64_t k = 0; k < keys; ++k) {
      trace.push_back(Acc(k));
    }
  }
  return trace;
}

TEST(MissRatioTest, LoopHitsOnlyWithFullResidency) {
  // Cyclic access over 10 keys: LRU thrashes for any cache < 10, hits for
  // cache >= 10 (the classic sequential-flooding curve).
  auto trace = Loop(10, 100);
  auto curve = ComputeMissRatioCurve(trace, {5, 9, 10, 20});
  ASSERT_EQ(curve.size(), 4u);
  EXPECT_GT(curve[0].miss_ratio, 0.99);  // size 5: every access misses
  EXPECT_GT(curve[1].miss_ratio, 0.99);  // size 9: still thrashing
  EXPECT_LT(curve[2].miss_ratio, 0.02);  // size 10: only cold misses
  EXPECT_LT(curve[3].miss_ratio, 0.02);
}

TEST(MissRatioTest, MonotoneNonIncreasing) {
  std::vector<StateAccess> trace;
  for (int i = 0; i < 5000; ++i) {
    trace.push_back(Acc(static_cast<uint64_t>(i * 2654435761u % 300)));
  }
  auto curve = ComputeMissRatioCurve(trace, {1, 4, 16, 64, 256, 1024});
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i].miss_ratio, curve[i - 1].miss_ratio + 1e-12);
  }
}

TEST(MissRatioTest, SingleKeyAlwaysHitsAfterCold) {
  auto trace = Loop(1, 1000);
  auto curve = ComputeMissRatioCurve(trace, {1});
  EXPECT_NEAR(curve[0].miss_ratio, 1.0 / 1000.0, 1e-9);
}

TEST(RecommendCacheTest, FindsLoopResidency) {
  auto trace = Loop(50, 100);
  uint64_t size = RecommendCacheSize(trace, 0.05);
  EXPECT_GE(size, 50u);
  EXPECT_LE(size, 100u);  // geometric sampling overshoot bounded
}

TEST(RecommendCacheTest, ImpossibleTargetReturnsZero) {
  // Every access is to a fresh key: cold misses dominate, no cache helps.
  std::vector<StateAccess> trace;
  for (uint64_t i = 0; i < 1000; ++i) {
    trace.push_back(Acc(i));
  }
  EXPECT_EQ(RecommendCacheSize(trace, 0.05), 0u);
}

TEST(PrefetchTest, PerfectlyPeriodicTraceIsFullyPredictable) {
  auto trace = Loop(8, 200);
  PrefetchResult r = SimulatePrefetch(trace, 1);
  // After the first loop everything is predicted.
  EXPECT_GT(r.hit_fraction(), 0.95);
}

TEST(PrefetchTest, ShuffledTraceIsUnpredictable) {
  auto trace = Loop(64, 50);
  PrefetchResult periodic = SimulatePrefetch(trace, 2);
  PrefetchResult shuffled = SimulatePrefetch(ShuffleTrace(trace, 9), 2);
  EXPECT_GT(periodic.hit_fraction(), 0.9);
  EXPECT_LT(shuffled.hit_fraction(), 0.3);
}

TEST(PrefetchTest, MoreSlotsNeverHurt) {
  std::vector<StateAccess> trace;
  // Alternating successors: after key 0 comes 1 or 2 alternately.
  for (int i = 0; i < 500; ++i) {
    trace.push_back(Acc(0));
    trace.push_back(Acc(i % 2 == 0 ? 1 : 2));
  }
  PrefetchResult one = SimulatePrefetch(trace, 1);
  PrefetchResult two = SimulatePrefetch(trace, 2);
  EXPECT_GE(two.predicted, one.predicted);
  EXPECT_GT(two.hit_fraction(), 0.9);  // both successors fit in 2 slots
  EXPECT_LT(one.hit_fraction(), 0.6);  // one slot keeps getting replaced
}

TEST(PrefetchTest, EmptyAndDegenerate) {
  EXPECT_EQ(SimulatePrefetch({}, 2).accesses, 0u);
  EXPECT_EQ(SimulatePrefetch(Loop(3, 5), 0).predicted, 0u);
}

}  // namespace
}  // namespace gadget
