// Batched store API: WriteBatch / MultiGet semantics, batch-vs-single
// equivalence per engine, the stats accounting contract, the group-commit
// WAL record format, and batched replay's read-your-writes guarantee.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/file_util.h"
#include "src/gadget/evaluator.h"
#include "src/stores/kvstore.h"
#include "src/stores/lsm/version.h"
#include "src/stores/lsm/wal.h"
#include "src/streams/state_access.h"

namespace gadget {
namespace {

constexpr const char* kEngines[] = {"mem", "lsm", "lethe", "btree", "faster"};

std::unique_ptr<KVStore> MustOpen(const std::string& engine, const std::string& dir) {
  StoreOptions opts;
  opts.engine = engine;
  opts.dir = dir;
  auto store = OpenStore(opts);
  EXPECT_TRUE(store.ok()) << engine << ": " << store.status().ToString();
  return store.ok() ? std::move(*store) : nullptr;
}

// ------------------------------------------------- in-batch ordering

class BatchEngineTest : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<ScopedTempDir>();
    store_ = MustOpen(GetParam(), dir_->path() + "/db");
    ASSERT_NE(store_, nullptr);
  }
  void TearDown() override {
    if (store_ != nullptr) {
      EXPECT_TRUE(store_->Close().ok());
    }
  }
  std::unique_ptr<ScopedTempDir> dir_;
  std::unique_ptr<KVStore> store_;
};

TEST_P(BatchEngineTest, EntriesApplyInInsertionOrder) {
  WriteBatch wb;
  wb.Put("k", "first");
  wb.Delete("k");
  wb.Put("k", "second");
  wb.Put("gone", "x");
  wb.Delete("gone");
  ASSERT_TRUE(store_->Write(wb).ok());

  std::string value;
  ASSERT_TRUE(store_->Get("k", &value).ok());
  EXPECT_EQ(value, "second");
  EXPECT_TRUE(store_->Get("gone", &value).IsNotFound());
}

TEST_P(BatchEngineTest, MultiGetEdgeCases) {
  ASSERT_TRUE(store_->Put("a", "va").ok());
  ASSERT_TRUE(store_->Put("b", "vb").ok());

  // Missing keys and duplicates in one call; duplicates resolve independently.
  std::vector<std::string> keys = {"a", "missing", "a", "b", "also-missing"};
  std::vector<std::string> values;
  std::vector<Status> statuses;
  ASSERT_TRUE(store_->MultiGet(keys, &values, &statuses).ok());
  ASSERT_EQ(values.size(), keys.size());
  ASSERT_EQ(statuses.size(), keys.size());
  EXPECT_TRUE(statuses[0].ok());
  EXPECT_EQ(values[0], "va");
  EXPECT_TRUE(statuses[1].IsNotFound());
  EXPECT_TRUE(statuses[2].ok());
  EXPECT_EQ(values[2], "va");
  EXPECT_TRUE(statuses[3].ok());
  EXPECT_EQ(values[3], "vb");
  EXPECT_TRUE(statuses[4].IsNotFound());

  // A key written earlier in the same Write call is visible to a MultiGet
  // issued right after (the batch is fully applied before Write returns).
  WriteBatch wb;
  wb.Put("c", "vc");
  wb.Delete("a");
  ASSERT_TRUE(store_->Write(wb).ok());
  keys = {"c", "a"};
  ASSERT_TRUE(store_->MultiGet(keys, &values, &statuses).ok());
  EXPECT_TRUE(statuses[0].ok());
  EXPECT_EQ(values[0], "vc");
  EXPECT_TRUE(statuses[1].IsNotFound());

  // Empty key vector: resized outputs, Ok overall.
  keys.clear();
  ASSERT_TRUE(store_->MultiGet(keys, &values, &statuses).ok());
  EXPECT_TRUE(values.empty());
  EXPECT_TRUE(statuses.empty());
}

TEST_P(BatchEngineTest, BatchCountersTrackCallsAndOps) {
  const StoreStats before = store_->stats();

  WriteBatch wb;
  wb.Put("x", "1");
  wb.Merge("x", "2");
  wb.Delete("y");
  ASSERT_TRUE(store_->Write(wb).ok());

  std::vector<std::string> values;
  std::vector<Status> statuses;
  ASSERT_TRUE(store_->MultiGet({"x", "y"}, &values, &statuses).ok());

  // Empty batches still count as one call carrying zero ops.
  WriteBatch empty;
  ASSERT_TRUE(store_->Write(empty).ok());

  const StoreStats after = store_->stats();
  EXPECT_EQ(after.batches - before.batches, 3u);
  EXPECT_EQ(after.batched_ops - before.batched_ops, 5u);
}

INSTANTIATE_TEST_SUITE_P(AllEngines, BatchEngineTest, ::testing::ValuesIn(kEngines));

// ------------------------------------- batch-vs-single equivalence

// Deterministic op mix over a small key space: puts, merges (or RMW where the
// engine lacks merge), deletes, with keys colliding often enough to exercise
// ordering within batches.
struct MixOp {
  WriteBatch::Op op;
  std::string key;
  std::string value;
};

std::vector<MixOp> MakeMix(size_t n) {
  std::vector<MixOp> ops;
  ops.reserve(n);
  uint64_t x = 88172645463325252ull;  // xorshift64
  for (size_t i = 0; i < n; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    std::string key = "key" + std::to_string(x % 37);
    switch (x % 10) {
      case 0:
        ops.push_back({WriteBatch::Op::kDelete, key, ""});
        break;
      case 1:
      case 2:
      case 3:
        ops.push_back({WriteBatch::Op::kMerge, key, "m" + std::to_string(i % 7)});
        break;
      default:
        ops.push_back({WriteBatch::Op::kPut, key, std::string(1 + i % 40, 'v')});
        break;
    }
  }
  return ops;
}

Status ApplySingle(KVStore* store, const MixOp& op, bool has_merge) {
  switch (op.op) {
    case WriteBatch::Op::kPut:
      return store->Put(op.key, op.value);
    case WriteBatch::Op::kMerge:
      return has_merge ? store->Merge(op.key, op.value)
                       : store->ReadModifyWrite(op.key, op.value);
    case WriteBatch::Op::kDelete:
      return store->Delete(op.key);
  }
  return Status::Internal("unreachable");
}

// Final state probe: Get every key the mix ever touched.
std::map<std::string, std::string> ProbeState(KVStore* store, const std::vector<MixOp>& ops) {
  std::map<std::string, std::string> state;
  for (const MixOp& op : ops) {
    if (state.count(op.key) != 0) {
      continue;
    }
    std::string value;
    Status s = store->Get(op.key, &value);
    state[op.key] = s.ok() ? value : (s.IsNotFound() ? "<absent>" : "<error>");
  }
  return state;
}

TEST_P(BatchEngineTest, Batch64MatchesSingleOps) {
  const std::vector<MixOp> mix = MakeMix(512);
  const bool has_merge = store_->supports_merge();

  // Path A: one call per op on the fixture's store.
  for (const MixOp& op : mix) {
    ASSERT_TRUE(ApplySingle(store_.get(), op, has_merge).ok());
  }
  const StoreStats single = store_->stats();

  // Path B: the same ops in WriteBatches of 64 on a fresh store.
  std::unique_ptr<KVStore> batched = MustOpen(GetParam(), dir_->path() + "/db-batched");
  ASSERT_NE(batched, nullptr);
  WriteBatch wb;
  for (size_t i = 0; i < mix.size(); ++i) {
    switch (mix[i].op) {
      case WriteBatch::Op::kPut:
        wb.Put(mix[i].key, mix[i].value);
        break;
      case WriteBatch::Op::kMerge:
        wb.Merge(mix[i].key, mix[i].value);
        break;
      case WriteBatch::Op::kDelete:
        wb.Delete(mix[i].key);
        break;
    }
    if (wb.size() == 64 || i + 1 == mix.size()) {
      ASSERT_TRUE(batched->Write(wb).ok());
      wb.Clear();
    }
  }
  const StoreStats grouped = batched->stats();

  // Identical surviving state...
  EXPECT_EQ(ProbeState(store_.get(), mix), ProbeState(batched.get(), mix));

  // ...and identical per-op accounting; only batches/batched_ops may differ.
  EXPECT_EQ(single.puts, grouped.puts);
  EXPECT_EQ(single.merges, grouped.merges);
  EXPECT_EQ(single.deletes, grouped.deletes);
  EXPECT_EQ(single.rmws, grouped.rmws);
  EXPECT_EQ(single.bytes_written, grouped.bytes_written);
  EXPECT_EQ(single.batches, 0u);
  EXPECT_EQ(grouped.batches, (mix.size() + 63) / 64);
  EXPECT_EQ(grouped.batched_ops, mix.size());

  EXPECT_TRUE(batched->Close().ok());
}

// bytes_written must agree ACROSS engines too — same op set, same number,
// regardless of how each engine spells merge internally.
TEST(BatchStatsDriftTest, BytesWrittenAgreeAcrossEnginesAndPaths) {
  const std::vector<MixOp> mix = MakeMix(256);
  uint64_t expected = 0;
  for (const MixOp& op : mix) {
    expected += op.key.size() + op.value.size();  // delete value is empty
  }

  for (const char* engine : kEngines) {
    ScopedTempDir dir;
    std::unique_ptr<KVStore> single = MustOpen(engine, dir.path() + "/s");
    ASSERT_NE(single, nullptr);
    const bool has_merge = single->supports_merge();
    for (const MixOp& op : mix) {
      ASSERT_TRUE(ApplySingle(single.get(), op, has_merge).ok());
    }
    EXPECT_EQ(single->stats().bytes_written, expected) << engine << " single-op path";
    EXPECT_TRUE(single->Close().ok());

    std::unique_ptr<KVStore> batched = MustOpen(engine, dir.path() + "/b");
    ASSERT_NE(batched, nullptr);
    WriteBatch wb;
    for (const MixOp& op : mix) {
      switch (op.op) {
        case WriteBatch::Op::kPut:
          wb.Put(op.key, op.value);
          break;
        case WriteBatch::Op::kMerge:
          wb.Merge(op.key, op.value);
          break;
        case WriteBatch::Op::kDelete:
          wb.Delete(op.key);
          break;
      }
    }
    ASSERT_TRUE(batched->Write(wb).ok());
    EXPECT_EQ(batched->stats().bytes_written, expected) << engine << " batched path";
    EXPECT_TRUE(batched->Close().ok());
  }
}

// ------------------------------------------- batched replay (evaluator)

std::vector<StateAccess> WriteThenReadTrace(uint64_t n) {
  // Put key i immediately followed by Get key i: with batch_size > 1 the get
  // lands while the put is still buffered, so it exercises the
  // read-your-writes flush rule. Every 5th key is probed but never written.
  std::vector<StateAccess> trace;
  trace.reserve(2 * n);
  for (uint64_t i = 0; i < n; ++i) {
    if (i % 5 != 0) {
      trace.push_back(StateAccess{OpType::kPut, StateKey{i, 0}, 64, i});
    }
    trace.push_back(StateAccess{OpType::kGet, StateKey{i, 0}, 0, i});
  }
  return trace;
}

TEST(BatchedReplayTest, ReadYourWritesMatchesUnbatchedReplay) {
  const std::vector<StateAccess> trace = WriteThenReadTrace(1'000);
  const uint64_t expected_not_found = 200;  // the every-5th never-written probes

  for (uint64_t batch : {1ull, 64ull}) {
    for (const char* engine : {"mem", "lsm"}) {
      ScopedTempDir dir;
      std::unique_ptr<KVStore> store = MustOpen(engine, dir.path() + "/db");
      ASSERT_NE(store, nullptr);
      ReplayOptions opts;
      opts.batch_size = batch;
      auto result = ReplayTrace(trace, store.get(), opts);
      ASSERT_TRUE(result.ok()) << engine << "/batch=" << batch;
      EXPECT_EQ(result->ops, trace.size()) << engine << "/batch=" << batch;
      // A get that missed its just-buffered put would inflate this count.
      EXPECT_EQ(result->not_found, expected_not_found) << engine << "/batch=" << batch;
      const StoreStats stats = store->stats();
      EXPECT_EQ(stats.puts, 800u) << engine << "/batch=" << batch;
      EXPECT_EQ(stats.gets, 1'000u) << engine << "/batch=" << batch;
      EXPECT_TRUE(store->Close().ok());
    }
  }
}

// ----------------------------------------------- group-commit WAL records

TEST(WalBatchTest, BatchRecordRoundTripsInOrder) {
  ScopedTempDir dir;
  const std::string path = dir.path() + "/wal.log";
  {
    auto wal = WalWriter::Create(path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(RecType::kValue, "solo", "s", /*sync=*/false).ok());
    WriteBatch wb;
    wb.Put("a", "1");
    wb.Merge("b", "2");
    wb.Delete("c");
    ASSERT_TRUE((*wal)->AppendBatch(wb, /*sync=*/true).ok());
    ASSERT_TRUE((*wal)->Close().ok());
  }

  std::vector<std::tuple<RecType, std::string, std::string>> ops;
  auto replayed = ReplayWal(path, [&](RecType type, std::string_view key,
                                      std::string_view value) {
    ops.emplace_back(type, std::string(key), std::string(value));
  });
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(*replayed, 4u);
  ASSERT_EQ(ops.size(), 4u);
  EXPECT_EQ(ops[0], std::make_tuple(RecType::kValue, "solo", "s"));
  EXPECT_EQ(ops[1], std::make_tuple(RecType::kValue, "a", "1"));
  EXPECT_EQ(ops[2], std::make_tuple(RecType::kMergeStack, "b", "2"));
  EXPECT_EQ(ops[3], std::make_tuple(RecType::kTombstone, "c", ""));
}

TEST(WalBatchTest, EmptyBatchWritesNothing) {
  ScopedTempDir dir;
  const std::string path = dir.path() + "/wal.log";
  auto wal = WalWriter::Create(path);
  ASSERT_TRUE(wal.ok());
  WriteBatch empty;
  ASSERT_TRUE((*wal)->AppendBatch(empty, /*sync=*/false).ok());
  EXPECT_EQ((*wal)->size(), 0u);
  ASSERT_TRUE((*wal)->Close().ok());
}

TEST(WalBatchTest, TornBatchRecordIsAllOrNothing) {
  ScopedTempDir dir;
  const std::string path = dir.path() + "/wal.log";
  {
    auto wal = WalWriter::Create(path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(RecType::kValue, "durable", "yes", /*sync=*/false).ok());
    WriteBatch wb;
    for (int i = 0; i < 8; ++i) {
      wb.Put("batch" + std::to_string(i), std::string(32, 'v'));
    }
    ASSERT_TRUE((*wal)->AppendBatch(wb, /*sync=*/false).ok());
    ASSERT_TRUE((*wal)->Close().ok());
  }

  // Tear the tail off the batch record: the crc covers the whole payload, so
  // even the intact leading entries must NOT replay.
  std::string data;
  ASSERT_TRUE(ReadFileToString(path, &data).ok());
  data.resize(data.size() - 5);
  ASSERT_TRUE(WriteStringToFile(path, data).ok());

  std::vector<std::string> keys;
  auto replayed = ReplayWal(path, [&](RecType, std::string_view key, std::string_view) {
    keys.emplace_back(key);
  });
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(*replayed, 1u);
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0], "durable");
}

// Crash recovery through the store: a database directory whose manifest
// points at a WAL containing a group-commit record (the state after a crash
// between commit and memtable flush) must come back with the batch applied.
TEST(WalBatchTest, LsmReplaysGroupCommitRecordOnOpen) {
  ScopedTempDir tmp;
  const std::string dir = tmp.path() + "/db";
  ASSERT_TRUE(CreateDirIfMissing(dir).ok());
  ManifestData manifest;
  manifest.next_file_number = 2;
  manifest.wal_numbers = {1};
  ASSERT_TRUE(SaveManifest(dir, manifest).ok());
  {
    auto wal = WalWriter::Create(dir + "/wal-1.log");
    ASSERT_TRUE(wal.ok());
    WriteBatch wb;
    wb.Put("a", "1");
    wb.Put("b", "2");
    wb.Delete("a");
    ASSERT_TRUE((*wal)->AppendBatch(wb, /*sync=*/true).ok());
    ASSERT_TRUE((*wal)->Close().ok());
  }

  std::unique_ptr<KVStore> store = MustOpen("lsm", dir);
  ASSERT_NE(store, nullptr);
  std::string value;
  EXPECT_TRUE(store->Get("a", &value).IsNotFound());
  ASSERT_TRUE(store->Get("b", &value).ok());
  EXPECT_EQ(value, "2");
  EXPECT_TRUE(store->Close().ok());
}

TEST(WalBatchTest, LsmDropsTornGroupCommitRecordOnOpen) {
  ScopedTempDir tmp;
  const std::string dir = tmp.path() + "/db";
  ASSERT_TRUE(CreateDirIfMissing(dir).ok());
  ManifestData manifest;
  manifest.next_file_number = 2;
  manifest.wal_numbers = {1};
  ASSERT_TRUE(SaveManifest(dir, manifest).ok());
  const std::string wal_path = dir + "/wal-1.log";
  {
    auto wal = WalWriter::Create(wal_path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(RecType::kValue, "synced", "v", /*sync=*/true).ok());
    WriteBatch wb;
    wb.Put("torn1", "x");
    wb.Put("torn2", "y");
    ASSERT_TRUE((*wal)->AppendBatch(wb, /*sync=*/false).ok());
    ASSERT_TRUE((*wal)->Close().ok());
  }
  std::string data;
  ASSERT_TRUE(ReadFileToString(wal_path, &data).ok());
  data.resize(data.size() - 3);  // the crash happened mid-batch-record
  ASSERT_TRUE(WriteStringToFile(wal_path, data).ok());

  std::unique_ptr<KVStore> store = MustOpen("lsm", dir);
  ASSERT_NE(store, nullptr);
  std::string value;
  ASSERT_TRUE(store->Get("synced", &value).ok());
  EXPECT_EQ(value, "v");
  EXPECT_TRUE(store->Get("torn1", &value).IsNotFound());
  EXPECT_TRUE(store->Get("torn2", &value).IsNotFound());
  EXPECT_TRUE(store->Close().ok());
}

}  // namespace
}  // namespace gadget
