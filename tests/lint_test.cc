// Tests for tools/gadget_lint: each rule fires on a bad snippet and stays
// quiet on the idiomatic one, the allowlist suppresses, RunLint's exit codes
// match the CLI contract, and — the meta-test — the real source tree is
// lint-clean under the checked-in allowlist.
#include "tools/gadget_lint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace gadget {
namespace lint {
namespace {

bool HasRule(const std::vector<Finding>& findings, std::string_view rule) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

// --------------------------------------------------------------- stripping

TEST(StripTest, RemovesCommentsAndStringsButKeepsLines) {
  std::string out = StripCommentsAndStrings(
      "int a; // rand()\n"
      "/* strcpy(\n"
      "   two lines */ int b;\n"
      "const char* s = \"system(\\\"x\\\")\";\n"
      "char c = '\"';\n");
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 5);
  EXPECT_EQ(out.find("rand"), std::string::npos);
  EXPECT_EQ(out.find("strcpy"), std::string::npos);
  EXPECT_EQ(out.find("system"), std::string::npos);
  EXPECT_NE(out.find("int a;"), std::string::npos);
  EXPECT_NE(out.find("int b;"), std::string::npos);
}

TEST(StripTest, HandlesRawStrings) {
  std::string out = StripCommentsAndStrings("auto s = R\"(system(\"x\") \" unterminated)\";\nint a;\n");
  EXPECT_EQ(out.find("system"), std::string::npos);
  EXPECT_NE(out.find("int a;"), std::string::npos);
}

// ----------------------------------------------------------- include-guard

TEST(IncludeGuardTest, ExpectedGuardDropsSrcPrefixAndUppercases) {
  EXPECT_EQ(ExpectedIncludeGuard("src/stores/lsm/lsm_store.h"), "GADGET_STORES_LSM_LSM_STORE_H_");
  EXPECT_EQ(ExpectedIncludeGuard("tools/gadget_lint.h"), "GADGET_TOOLS_GADGET_LINT_H_");
  EXPECT_EQ(ExpectedIncludeGuard("/abs/repo/src/common/status.h"), "GADGET_COMMON_STATUS_H_");
}

TEST(IncludeGuardTest, AcceptsCorrectGuard) {
  auto findings = LintContent("src/foo/bar.h",
                              "#ifndef GADGET_FOO_BAR_H_\n"
                              "#define GADGET_FOO_BAR_H_\n"
                              "#endif  // GADGET_FOO_BAR_H_\n");
  EXPECT_FALSE(HasRule(findings, "include-guard")) << FormatFinding(findings.front());
}

TEST(IncludeGuardTest, FlagsWrongName) {
  auto findings = LintContent("src/foo/bar.h",
                              "#ifndef FOO_BAR_H\n"
                              "#define FOO_BAR_H\n"
                              "#endif\n");
  ASSERT_TRUE(HasRule(findings, "include-guard"));
  EXPECT_NE(findings.front().message.find("GADGET_FOO_BAR_H_"), std::string::npos);
}

TEST(IncludeGuardTest, FlagsMissingGuardAndMissingDefine) {
  EXPECT_TRUE(HasRule(LintContent("src/a.h", "int x;\n"), "include-guard"));
  EXPECT_TRUE(HasRule(LintContent("src/a.h", "#ifndef GADGET_A_H_\nint x;\n#endif\n"),
                      "include-guard"));
}

TEST(IncludeGuardTest, NotAppliedToSourceFiles) {
  EXPECT_FALSE(HasRule(LintContent("src/a.cc", "int x;\n"), "include-guard"));
}

// --------------------------------------------------------- locked-requires

TEST(LockedRequiresTest, FlagsUnannotatedDeclaration) {
  auto findings = LintContent("src/foo.h",
                              "#ifndef GADGET_FOO_H_\n"
                              "#define GADGET_FOO_H_\n"
                              "class C {\n"
                              "  void EvictLocked();\n"
                              "};\n"
                              "#endif\n");
  ASSERT_TRUE(HasRule(findings, "locked-requires"));
  EXPECT_EQ(findings.front().line, 4);
}

TEST(LockedRequiresTest, AcceptsRequiresIncludingMultiLine) {
  auto findings = LintContent("src/foo.h",
                              "#ifndef GADGET_FOO_H_\n"
                              "#define GADGET_FOO_H_\n"
                              "class C {\n"
                              "  void EvictLocked() REQUIRES(mu_);\n"
                              "  int CountLocked(int a,\n"
                              "                  int b) const REQUIRES_SHARED(mu_);\n"
                              "  void HackLocked() NO_THREAD_SAFETY_ANALYSIS;\n"
                              "};\n"
                              "#endif\n");
  EXPECT_FALSE(HasRule(findings, "locked-requires")) << FormatFinding(findings.front());
}

TEST(LockedRequiresTest, IgnoresCallsAndSourceFiles) {
  // Calls inside inline header bodies are uses, not declarations.
  auto findings = LintContent("src/foo.h",
                              "#ifndef GADGET_FOO_H_\n"
                              "#define GADGET_FOO_H_\n"
                              "class C {\n"
                              "  void DrainLocked() REQUIRES(mu_);\n"
                              "  void Drain() { return DrainLocked(); }\n"
                              "  bool F() { return !EmptyLocked() && x_.CheckLocked(); }\n"
                              "};\n"
                              "#endif\n");
  EXPECT_FALSE(HasRule(findings, "locked-requires")) << FormatFinding(findings.front());
  // Out-of-line definitions in .cc files do not repeat the annotation.
  EXPECT_FALSE(HasRule(LintContent("src/foo.cc", "void C::EvictLocked() { work(); }\n"),
                       "locked-requires"));
}

// ------------------------------------------------------------- banned-call

TEST(BannedCallTest, FlagsEachBannedFunction) {
  EXPECT_TRUE(HasRule(LintContent("src/a.cc", "int x = rand();\n"), "banned-call"));
  EXPECT_TRUE(HasRule(LintContent("src/a.cc", "strcpy(dst, src);\n"), "banned-call"));
  EXPECT_TRUE(HasRule(LintContent("src/a.cc", "sprintf(buf, \"%d\", 1);\n"), "banned-call"));
  EXPECT_TRUE(HasRule(LintContent("src/a.cc", "system(\"rm -rf /\");\n"), "banned-call"));
  EXPECT_TRUE(HasRule(LintContent("src/a.cc", "char* p = new char[64];\n"), "banned-call"));
}

TEST(BannedCallTest, IgnoresLookalikesCommentsAndStrings) {
  EXPECT_FALSE(HasRule(LintContent("src/a.cc", "srand(7); grand(); rando();\n"), "banned-call"));
  EXPECT_FALSE(HasRule(LintContent("src/a.cc", "snprintf(buf, n, \"%d\", 1);\n"), "banned-call"));
  EXPECT_FALSE(HasRule(LintContent("src/a.cc", "// rand() is banned\n"), "banned-call"));
  EXPECT_FALSE(HasRule(LintContent("src/a.cc", "log(\"do not call system()\");\n"), "banned-call"));
  EXPECT_FALSE(HasRule(LintContent("src/a.cc", "auto v = std::make_unique<char[]>(n);\n"),
                       "banned-call"));
}

// ----------------------------------------------------- using-namespace-std

TEST(UsingNamespaceTest, FlagsHeadersOnly) {
  EXPECT_TRUE(HasRule(LintContent("src/a.h",
                                  "#ifndef GADGET_A_H_\n#define GADGET_A_H_\n"
                                  "using namespace std;\n#endif\n"),
                      "using-namespace-std"));
  EXPECT_FALSE(HasRule(LintContent("src/a.cc", "using namespace std;\n"), "using-namespace-std"));
  EXPECT_FALSE(HasRule(LintContent("src/a.h",
                                   "#ifndef GADGET_A_H_\n#define GADGET_A_H_\n"
                                   "using std::string;\n#endif\n"),
                       "using-namespace-std"));
}

// ------------------------------------------------------------- void-status

TEST(VoidStatusTest, FlagsUnjustifiedDiscardedCall) {
  auto findings = LintContent("src/a.cc", "void f() { (void)store->Close(); }\n");
  ASSERT_TRUE(HasRule(findings, "void-status"));
  EXPECT_EQ(findings.front().line, 1);
}

TEST(VoidStatusTest, AcceptsJustificationWithinThreeLines) {
  EXPECT_FALSE(HasRule(LintContent("src/a.cc",
                                   "// status intentionally ignored: destructor.\n"
                                   "(void)Close();\n"),
                       "void-status"));
  // A two-line comment plus a preceding discard still keeps the phrase in
  // the three-line window.
  EXPECT_FALSE(HasRule(LintContent("src/a.cc",
                                   "// status intentionally ignored: this test\n"
                                   "// asserts on counters only.\n"
                                   "(void)store->Get(key, &v);\n"
                                   "(void)store->Delete(key);\n"),
                       "void-status"));
}

TEST(VoidStatusTest, IgnoresVariableSilencing) {
  EXPECT_FALSE(HasRule(LintContent("src/a.cc", "(void)unused_variable;\n"), "void-status"));
}

// ------------------------------------------------------------- rename-sync

TEST(RenameSyncTest, FlagsRenameWithoutDirectorySync) {
  auto findings =
      LintContent("src/a.cc", "Status Save() {\n  return RenameFile(tmp, path);\n}\n");
  ASSERT_TRUE(HasRule(findings, "rename-sync"));
  EXPECT_EQ(findings.front().line, 2);
}

TEST(RenameSyncTest, AcceptsRenameFollowedBySyncDir) {
  EXPECT_FALSE(HasRule(LintContent("src/a.cc",
                                   "Status Save() {\n"
                                   "  GADGET_RETURN_IF_ERROR(RenameFile(tmp, path));\n"
                                   "  // several lines of explanation may sit\n"
                                   "  // between the rename and the sync\n"
                                   "  return SyncDir(dir);\n"
                                   "}\n"),
                       "rename-sync"));
}

TEST(RenameSyncTest, IgnoresDeclarationAndDefinition) {
  EXPECT_FALSE(HasRule(LintContent("src/file_util.h",
                                   "#ifndef GADGET_FILE_UTIL_H_\n#define GADGET_FILE_UTIL_H_\n"
                                   "Status RenameFile(const std::string& f, const std::string& t);\n"
                                   "#endif\n"),
                       "rename-sync"));
  EXPECT_FALSE(HasRule(LintContent("src/file_util.cc",
                                   "Status RenameFile(const std::string& f, const std::string& t) {\n"
                                   "  return DoRename(f, t);\n"
                                   "}\n"),
                       "rename-sync"));
}

// -------------------------------------------------------- bufferpool-bypass

TEST(BufferPoolBypassTest, FlagsBlockCacheAndRawPread) {
  EXPECT_TRUE(
      HasRule(LintContent("src/stores/lsm/a.cc", "BlockCache cache(1 << 20);\n"),
              "bufferpool-bypass"));
  auto findings = LintContent("src/stores/lsm/a.cc",
                              "ssize_t r = ::pread(fd, buf, n, off);\n");
  ASSERT_TRUE(HasRule(findings, "bufferpool-bypass"));
  EXPECT_EQ(findings.front().line, 1);
  EXPECT_TRUE(HasRule(LintContent("src/x.cc", "if (pread(fd, p, n, o) < 0) {}\n"),
                      "bufferpool-bypass"));
  EXPECT_TRUE(HasRule(LintContent("src/x.cc", "pread64(fd, p, n, o);\n"),
                      "bufferpool-bypass"));
}

TEST(BufferPoolBypassTest, ExemptsPoolImplementationAndLookalikes) {
  EXPECT_FALSE(HasRule(LintContent("src/stores/bufferpool/io_backend.cc",
                                   "::pread(fd, buf, n, off);\nBlockCache x;\n"),
                       "bufferpool-bypass"));
  EXPECT_FALSE(HasRule(LintContent("src/a.cc", "PreadAll(fd, buf, n, off);\n"),
                       "bufferpool-bypass"));
  EXPECT_FALSE(HasRule(LintContent("src/a.cc", "// pread() is banned here\n"),
                       "bufferpool-bypass"));
  EXPECT_FALSE(
      HasRule(LintContent("src/a.cc", "int my_pread(int fd);\n"), "bufferpool-bypass"));
}

// --------------------------------------------------------------- raw-socket

TEST(RawSocketTest, FlagsSyscallsOutsideNetDir) {
  auto findings =
      LintContent("src/server/server.cc", "int fd = socket(AF_INET, SOCK_STREAM, 0);\n");
  ASSERT_TRUE(HasRule(findings, "raw-socket"));
  EXPECT_EQ(findings.front().line, 1);
  EXPECT_TRUE(HasRule(LintContent("src/a.cc", "send(fd, buf, n, 0);\n"), "raw-socket"));
  EXPECT_TRUE(HasRule(LintContent("src/a.cc", "ssize_t r = ::recv(fd, p, n, 0);\n"),
                      "raw-socket"));
  EXPECT_TRUE(HasRule(LintContent("src/a.cc", "sendmsg(fd, &msg, 0);\n"), "raw-socket"));
  EXPECT_TRUE(
      HasRule(LintContent("src/a.cc", "recvfrom(fd, p, n, 0, a, l);\n"), "raw-socket"));
  EXPECT_TRUE(HasRule(LintContent("src/a.cc", "writev(fd, iov, cnt);\n"), "raw-socket"));
  EXPECT_TRUE(HasRule(LintContent("src/a.cc", "ssize_t r = ::writev(fd, iov, 2);\n"),
                      "raw-socket"));
}

TEST(RawSocketTest, FlagsUringSocketOpcodesOutsideNetDir) {
  EXPECT_TRUE(HasRule(LintContent("src/a.cc", "sqe->opcode = IORING_OP_RECV;\n"),
                      "raw-socket"));
  EXPECT_TRUE(HasRule(LintContent("src/a.cc", "sqe->opcode = IORING_OP_SENDMSG;\n"),
                      "raw-socket"));
  EXPECT_TRUE(HasRule(LintContent("src/a.cc", "sqe->opcode = IORING_OP_SEND;\n"),
                      "raw-socket"));
  EXPECT_TRUE(HasRule(LintContent("src/a.cc", "op = IORING_OP_RECVMSG;\n"), "raw-socket"));
  EXPECT_TRUE(HasRule(LintContent("src/a.cc", "op = IORING_OP_WRITEV;\n"), "raw-socket"));
  // The ring itself is sanctioned in the net dir.
  EXPECT_FALSE(HasRule(LintContent("src/server/net/uring_socket.cc",
                                   "sqe->opcode = IORING_OP_RECV;\n"),
                       "raw-socket"));
  // File-I/O opcodes stay legal: the buffer pool's IoBackend uses them.
  EXPECT_FALSE(HasRule(LintContent("src/stores/bufferpool/io_backend.cc",
                                   "sqe->opcode = IORING_OP_READ;\n"),
                       "raw-socket"));
  EXPECT_FALSE(HasRule(LintContent("src/a.cc", "op = IORING_OP_WRITE;\n"), "raw-socket"));
}

TEST(RawSocketTest, ExemptsNetDirHelpersAndLookalikes) {
  EXPECT_FALSE(HasRule(LintContent("src/server/net/socket.cc",
                                   "int fd = socket(AF_INET, SOCK_STREAM, 0);\n"
                                   "send(fd, buf, n, 0);\nrecv(fd, p, n, 0);\n"),
                       "raw-socket"));
  // Method calls and project helpers must not fire.
  EXPECT_FALSE(HasRule(LintContent("src/a.cc", "conn->Send(frame);\n"), "raw-socket"));
  EXPECT_FALSE(HasRule(LintContent("src/a.cc", "lease.conn()->Send(frame);\n"), "raw-socket"));
  EXPECT_FALSE(HasRule(LintContent("src/a.cc", "net::SendAll(fd, data);\n"), "raw-socket"));
  EXPECT_FALSE(HasRule(LintContent("src/a.cc", "RecvChunk(fd, &buf, n, &err);\n"),
                       "raw-socket"));
  EXPECT_FALSE(HasRule(LintContent("src/a.cc", "my_send(fd); resend(x); wire::recv_ops++;\n"),
                       "raw-socket"));
  EXPECT_FALSE(HasRule(LintContent("src/a.cc", "net::WritevNonBlocking(fd, iov, n, &e);\n"),
                       "raw-socket"));
  EXPECT_FALSE(HasRule(LintContent("src/a.cc", "stats.frames_per_writev_max = 4;\n"),
                       "raw-socket"));
  EXPECT_FALSE(HasRule(LintContent("src/a.cc", "// send() is banned here\n"), "raw-socket"));
}

// --------------------------------------------------------------- lock-order

// Two classes with uniquely named locks; file A nests beta under alpha, file
// B nests alpha under beta. The global graph has the cycle even though each
// translation unit is individually consistent — exactly what per-file lint
// can never see.
TEST(LockOrderTest, FlagsCrossFileCycle) {
  std::vector<SourceFile> files = {
      {"src/a.cc",
       "class AlphaHolder {\n"
       " public:\n"
       "  void Poke(BetaHolder* other) {\n"
       "    MutexLock a(&alpha_mu_);\n"
       "    MutexLock b(&other->beta_mu_);\n"
       "  }\n"
       "  Mutex alpha_mu_;\n"
       "};\n"},
      {"src/b.cc",
       "class BetaHolder {\n"
       " public:\n"
       "  void Poke(AlphaHolder* other) {\n"
       "    MutexLock b(&beta_mu_);\n"
       "    MutexLock a(&other->alpha_mu_);\n"
       "  }\n"
       "  Mutex beta_mu_;\n"
       "};\n"},
  };
  auto findings = AnalyzeTree(files);
  ASSERT_TRUE(HasRule(findings, "lock-order")) << findings.size();
  EXPECT_NE(findings.front().message.find("alpha_mu_"), std::string::npos)
      << findings.front().message;
  EXPECT_NE(findings.front().message.find("beta_mu_"), std::string::npos);
}

TEST(LockOrderTest, AcceptsConsistentOrderAcrossFiles) {
  std::vector<SourceFile> files = {
      {"src/a.cc",
       "class AlphaHolder {\n"
       "  void Poke(BetaHolder* o) { MutexLock a(&alpha_mu_); MutexLock b(&o->beta_mu_); }\n"
       "  Mutex alpha_mu_;\n"
       "};\n"},
      {"src/b.cc",
       "class BetaHolder {\n"
       "  void Poke(AlphaHolder* o) { MutexLock a(&o->alpha_mu_); MutexLock b(&beta_mu_); }\n"
       "  Mutex beta_mu_;\n"
       "};\n"},
  };
  EXPECT_FALSE(HasRule(AnalyzeTree(files), "lock-order"));
}

// A REQUIRES(...) annotation counts as holding the lock for the whole body,
// and the annotation on the header declaration carries to the out-of-line
// definition.
TEST(LockOrderTest, RequiresAnnotationSeedsHeldSet) {
  std::vector<SourceFile> files = {
      {"src/a.cc",
       "class AlphaHolder {\n"
       "  void NestLocked(BetaHolder* o) REQUIRES(alpha_mu_) {\n"
       "    MutexLock b(&o->beta_mu_);\n"
       "  }\n"
       "  Mutex alpha_mu_;\n"
       "};\n"
       "class BetaHolder {\n"
       "  void Nest(AlphaHolder* o) {\n"
       "    MutexLock b(&beta_mu_);\n"
       "    MutexLock a(&o->alpha_mu_);\n"
       "  }\n"
       "  Mutex beta_mu_;\n"
       "};\n"},
  };
  EXPECT_TRUE(HasRule(AnalyzeTree(files), "lock-order"));
}

// Holding a lock while calling a function that takes another lock forms the
// same edge (one level of inlining).
TEST(LockOrderTest, InterproceduralEdgeThroughCall) {
  std::vector<SourceFile> files = {
      {"src/a.cc",
       "class AlphaHolder {\n"
       " public:\n"
       "  void Outer() {\n"
       "    MutexLock a(&alpha_mu_);\n"
       "    GrabBeta();\n"
       "  }\n"
       "  void GrabBeta();\n"
       "  Mutex alpha_mu_;\n"
       "};\n"
       "void AlphaHolder::GrabBeta() { MutexLock b(&g_beta.beta_mu_); }\n"
       "class BetaHolder {\n"
       " public:\n"
       "  void Flip(AlphaHolder* o) {\n"
       "    MutexLock b(&beta_mu_);\n"
       "    MutexLock a(&o->alpha_mu_);\n"
       "  }\n"
       "  Mutex beta_mu_;\n"
       "};\n"},
  };
  EXPECT_TRUE(HasRule(AnalyzeTree(files), "lock-order"));
}

// A member name declared by several classes (`mu` everywhere) cannot be
// attributed; the analyzer must skip it rather than invent edges.
TEST(LockOrderTest, AmbiguousLockNamesNeverFire) {
  std::vector<SourceFile> files = {
      {"src/a.cc",
       "class P { public: void F(Q* q) { MutexLock a(&mu); MutexLock b(&q->mu); }\n"
       "  Mutex mu;\n};\n"
       "class Q { public: void F(P* p) { MutexLock b(&mu); MutexLock a(&p->mu); }\n"
       "  Mutex mu;\n};\n"},
  };
  // `&q->mu` / `&p->mu` resolve to the *enclosing* class (which declares mu)
  // or stay ambiguous — either way no cross-class inversion can be proven.
  EXPECT_FALSE(HasRule(AnalyzeTree(files), "lock-order"));
}

// ---------------------------------------------------------- reactor-blocking

TEST(ReactorBlockingTest, FlagsBlockingCallReachableFromMarkedEntry) {
  std::vector<SourceFile> files = {
      {"src/server/loop.cc",
       "class Loop {\n"
       " public:\n"
       "  void Run();\n"
       "  void Helper();\n"
       "};\n"
       "// gadget:reactor-context\n"
       "void Loop::Run() { Helper(); }\n"
       "void Loop::Helper() { fsync(3); }\n"},
  };
  auto findings = AnalyzeTree(files);
  ASSERT_TRUE(HasRule(findings, "reactor-blocking"));
  EXPECT_EQ(findings.front().line, 8);
  EXPECT_NE(findings.front().message.find("Loop::Run -> Loop::Helper"), std::string::npos)
      << findings.front().message;
}

TEST(ReactorBlockingTest, FlagsSleepAndCondVarWaitDirectlyInEntry) {
  std::vector<SourceFile> files = {
      {"src/server/loop.cc",
       "// gadget:reactor-context\n"
       "void Run() {\n"
       "  std::this_thread::sleep_for(std::chrono::milliseconds(1));\n"
       "  cv.Wait();\n"
       "}\n"},
  };
  auto findings = AnalyzeTree(files);
  int hits = 0;
  for (const auto& f : findings) {
    hits += f.rule == "reactor-blocking" ? 1 : 0;
  }
  EXPECT_EQ(hits, 2);
}

TEST(ReactorBlockingTest, BlockingOkCommentSuppresses) {
  std::vector<SourceFile> files = {
      {"src/server/loop.cc",
       "// gadget:reactor-context\n"
       "void Run() {\n"
       "  // gadget:blocking-ok: startup only, before the loop goes live.\n"
       "  fsync(3);\n"
       "}\n"},
  };
  EXPECT_FALSE(HasRule(AnalyzeTree(files), "reactor-blocking"));
}

TEST(ReactorBlockingTest, UnmarkedAndUnreachableFunctionsStayQuiet) {
  std::vector<SourceFile> files = {
      // No marker at all: nothing is an entry point.
      {"src/server/a.cc", "void Run() { fsync(3); }\n"},
      // Marker, but the blocking call sits in a function the entry never
      // reaches (a worker loop beside the reactor).
      {"src/server/b.cc",
       "// gadget:reactor-context\n"
       "void Reactor() { Poll(); }\n"
       "void Poll() {}\n"
       "void Worker() { cv.Wait(); }\n"},
  };
  EXPECT_FALSE(HasRule(AnalyzeTree(files), "reactor-blocking"));
}

// --------------------------------------------------------------- allowlist

TEST(AllowlistTest, SuppressesByRuleAndPathSuffix) {
  Allowlist list = Allowlist::Parse(
      "# comment\n"
      "\n"
      "banned-call src/legacy.cc\n"
      "void-status *\n");
  EXPECT_TRUE(list.Allows("third_party/src/legacy.cc", "banned-call"));
  EXPECT_FALSE(list.Allows("src/other.cc", "banned-call"));
  EXPECT_FALSE(list.Allows("src/legacy.cc", "include-guard"));
  EXPECT_TRUE(list.Allows("anything/at/all.h", "void-status"));
}

TEST(AllowlistTest, TracksUnusedEntriesWithLineNumbers) {
  Allowlist list = Allowlist::Parse(
      "# header comment\n"
      "banned-call src/legacy.cc\n"
      "rename-sync src/never_matches.cc\n");
  EXPECT_TRUE(list.Allows("src/legacy.cc", "banned-call"));
  auto stale = list.UnusedEntries();
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(stale[0].rule, "rename-sync");
  EXPECT_EQ(stale[0].path_suffix, "src/never_matches.cc");
  EXPECT_EQ(stale[0].line, 3);
}

// ------------------------------------------------------ RunLint exit codes

TEST(RunLintTest, ExitCodesMatchCliContract) {
  const std::string dir = ::testing::TempDir() + "/lint_exit";
  std::filesystem::remove_all(dir);  // leftovers from a previous run
  std::filesystem::create_directories(dir);
  std::ostringstream out, err;
  // No source files -> usage error (2).
  EXPECT_EQ(RunLint({dir}, "", out, err), 2);
  // A clean file -> 0.
  {
    std::ofstream f(dir + "/clean.cc");
    f << "int main() { return 0; }\n";
  }
  EXPECT_EQ(RunLint({dir}, "", out, err), 0);
  // A dirty file -> 1, and the finding is printed file:line: rule-id: ...
  {
    std::ofstream f(dir + "/dirty.cc");
    f << "int x = rand();\n";
  }
  out.str("");
  EXPECT_EQ(RunLint({dir}, "", out, err), 1);
  EXPECT_NE(out.str().find("dirty.cc:1: banned-call:"), std::string::npos) << out.str();
  // The allowlist turns the same scan clean again -> 0.
  const std::string allow = dir + "/allow.txt";
  {
    std::ofstream f(allow);
    f << "banned-call dirty.cc\n";
  }
  EXPECT_EQ(RunLint({dir}, allow, out, err), 0);
  // A stale entry (nothing left to suppress) flips the scan back to 1: dead
  // allowlist lines would silently swallow the next real regression.
  {
    std::ofstream f(allow);
    f << "banned-call dirty.cc\n"
      << "rename-sync gone_forever.cc\n";
  }
  out.str("");
  EXPECT_EQ(RunLint({dir}, allow, out, err), 1);
  EXPECT_NE(out.str().find("stale-allowlist"), std::string::npos) << out.str();
  EXPECT_NE(out.str().find("rename-sync gone_forever.cc"), std::string::npos) << out.str();
  // A missing allowlist file is a usage error (2).
  EXPECT_EQ(RunLint({dir}, dir + "/nope.txt", out, err), 2);
}

// ---------------------------------------------------------------- meta-test

// The real tree must be lint-clean under the checked-in allowlist: this is
// the same scan the static-analysis CI job runs.
TEST(MetaTest, RealSourceTreeIsClean) {
  const std::string root = GADGET_SOURCE_DIR;
  std::ostringstream out, err;
  int rc = RunLint({root + "/src", root + "/tools", root + "/tests"},
                   root + "/tools/lint_allowlist.txt", out, err);
  EXPECT_EQ(rc, 0) << "gadget_lint findings:\n" << out.str() << err.str();
}

}  // namespace
}  // namespace lint
}  // namespace gadget
