// Tests for tools/gadget_lint: each rule fires on a bad snippet and stays
// quiet on the idiomatic one, the allowlist suppresses, RunLint's exit codes
// match the CLI contract, and — the meta-test — the real source tree is
// lint-clean under the checked-in allowlist.
#include "tools/gadget_lint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace gadget {
namespace lint {
namespace {

bool HasRule(const std::vector<Finding>& findings, std::string_view rule) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

// --------------------------------------------------------------- stripping

TEST(StripTest, RemovesCommentsAndStringsButKeepsLines) {
  std::string out = StripCommentsAndStrings(
      "int a; // rand()\n"
      "/* strcpy(\n"
      "   two lines */ int b;\n"
      "const char* s = \"system(\\\"x\\\")\";\n"
      "char c = '\"';\n");
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 5);
  EXPECT_EQ(out.find("rand"), std::string::npos);
  EXPECT_EQ(out.find("strcpy"), std::string::npos);
  EXPECT_EQ(out.find("system"), std::string::npos);
  EXPECT_NE(out.find("int a;"), std::string::npos);
  EXPECT_NE(out.find("int b;"), std::string::npos);
}

TEST(StripTest, HandlesRawStrings) {
  std::string out = StripCommentsAndStrings("auto s = R\"(system(\"x\") \" unterminated)\";\nint a;\n");
  EXPECT_EQ(out.find("system"), std::string::npos);
  EXPECT_NE(out.find("int a;"), std::string::npos);
}

// ----------------------------------------------------------- include-guard

TEST(IncludeGuardTest, ExpectedGuardDropsSrcPrefixAndUppercases) {
  EXPECT_EQ(ExpectedIncludeGuard("src/stores/lsm/lsm_store.h"), "GADGET_STORES_LSM_LSM_STORE_H_");
  EXPECT_EQ(ExpectedIncludeGuard("tools/gadget_lint.h"), "GADGET_TOOLS_GADGET_LINT_H_");
  EXPECT_EQ(ExpectedIncludeGuard("/abs/repo/src/common/status.h"), "GADGET_COMMON_STATUS_H_");
}

TEST(IncludeGuardTest, AcceptsCorrectGuard) {
  auto findings = LintContent("src/foo/bar.h",
                              "#ifndef GADGET_FOO_BAR_H_\n"
                              "#define GADGET_FOO_BAR_H_\n"
                              "#endif  // GADGET_FOO_BAR_H_\n");
  EXPECT_FALSE(HasRule(findings, "include-guard")) << FormatFinding(findings.front());
}

TEST(IncludeGuardTest, FlagsWrongName) {
  auto findings = LintContent("src/foo/bar.h",
                              "#ifndef FOO_BAR_H\n"
                              "#define FOO_BAR_H\n"
                              "#endif\n");
  ASSERT_TRUE(HasRule(findings, "include-guard"));
  EXPECT_NE(findings.front().message.find("GADGET_FOO_BAR_H_"), std::string::npos);
}

TEST(IncludeGuardTest, FlagsMissingGuardAndMissingDefine) {
  EXPECT_TRUE(HasRule(LintContent("src/a.h", "int x;\n"), "include-guard"));
  EXPECT_TRUE(HasRule(LintContent("src/a.h", "#ifndef GADGET_A_H_\nint x;\n#endif\n"),
                      "include-guard"));
}

TEST(IncludeGuardTest, NotAppliedToSourceFiles) {
  EXPECT_FALSE(HasRule(LintContent("src/a.cc", "int x;\n"), "include-guard"));
}

// --------------------------------------------------------- locked-requires

TEST(LockedRequiresTest, FlagsUnannotatedDeclaration) {
  auto findings = LintContent("src/foo.h",
                              "#ifndef GADGET_FOO_H_\n"
                              "#define GADGET_FOO_H_\n"
                              "class C {\n"
                              "  void EvictLocked();\n"
                              "};\n"
                              "#endif\n");
  ASSERT_TRUE(HasRule(findings, "locked-requires"));
  EXPECT_EQ(findings.front().line, 4);
}

TEST(LockedRequiresTest, AcceptsRequiresIncludingMultiLine) {
  auto findings = LintContent("src/foo.h",
                              "#ifndef GADGET_FOO_H_\n"
                              "#define GADGET_FOO_H_\n"
                              "class C {\n"
                              "  void EvictLocked() REQUIRES(mu_);\n"
                              "  int CountLocked(int a,\n"
                              "                  int b) const REQUIRES_SHARED(mu_);\n"
                              "  void HackLocked() NO_THREAD_SAFETY_ANALYSIS;\n"
                              "};\n"
                              "#endif\n");
  EXPECT_FALSE(HasRule(findings, "locked-requires")) << FormatFinding(findings.front());
}

TEST(LockedRequiresTest, IgnoresCallsAndSourceFiles) {
  // Calls inside inline header bodies are uses, not declarations.
  auto findings = LintContent("src/foo.h",
                              "#ifndef GADGET_FOO_H_\n"
                              "#define GADGET_FOO_H_\n"
                              "class C {\n"
                              "  void DrainLocked() REQUIRES(mu_);\n"
                              "  void Drain() { return DrainLocked(); }\n"
                              "  bool F() { return !EmptyLocked() && x_.CheckLocked(); }\n"
                              "};\n"
                              "#endif\n");
  EXPECT_FALSE(HasRule(findings, "locked-requires")) << FormatFinding(findings.front());
  // Out-of-line definitions in .cc files do not repeat the annotation.
  EXPECT_FALSE(HasRule(LintContent("src/foo.cc", "void C::EvictLocked() { work(); }\n"),
                       "locked-requires"));
}

// ------------------------------------------------------------- banned-call

TEST(BannedCallTest, FlagsEachBannedFunction) {
  EXPECT_TRUE(HasRule(LintContent("src/a.cc", "int x = rand();\n"), "banned-call"));
  EXPECT_TRUE(HasRule(LintContent("src/a.cc", "strcpy(dst, src);\n"), "banned-call"));
  EXPECT_TRUE(HasRule(LintContent("src/a.cc", "sprintf(buf, \"%d\", 1);\n"), "banned-call"));
  EXPECT_TRUE(HasRule(LintContent("src/a.cc", "system(\"rm -rf /\");\n"), "banned-call"));
  EXPECT_TRUE(HasRule(LintContent("src/a.cc", "char* p = new char[64];\n"), "banned-call"));
}

TEST(BannedCallTest, IgnoresLookalikesCommentsAndStrings) {
  EXPECT_FALSE(HasRule(LintContent("src/a.cc", "srand(7); grand(); rando();\n"), "banned-call"));
  EXPECT_FALSE(HasRule(LintContent("src/a.cc", "snprintf(buf, n, \"%d\", 1);\n"), "banned-call"));
  EXPECT_FALSE(HasRule(LintContent("src/a.cc", "// rand() is banned\n"), "banned-call"));
  EXPECT_FALSE(HasRule(LintContent("src/a.cc", "log(\"do not call system()\");\n"), "banned-call"));
  EXPECT_FALSE(HasRule(LintContent("src/a.cc", "auto v = std::make_unique<char[]>(n);\n"),
                       "banned-call"));
}

// ----------------------------------------------------- using-namespace-std

TEST(UsingNamespaceTest, FlagsHeadersOnly) {
  EXPECT_TRUE(HasRule(LintContent("src/a.h",
                                  "#ifndef GADGET_A_H_\n#define GADGET_A_H_\n"
                                  "using namespace std;\n#endif\n"),
                      "using-namespace-std"));
  EXPECT_FALSE(HasRule(LintContent("src/a.cc", "using namespace std;\n"), "using-namespace-std"));
  EXPECT_FALSE(HasRule(LintContent("src/a.h",
                                   "#ifndef GADGET_A_H_\n#define GADGET_A_H_\n"
                                   "using std::string;\n#endif\n"),
                       "using-namespace-std"));
}

// ------------------------------------------------------------- void-status

TEST(VoidStatusTest, FlagsUnjustifiedDiscardedCall) {
  auto findings = LintContent("src/a.cc", "void f() { (void)store->Close(); }\n");
  ASSERT_TRUE(HasRule(findings, "void-status"));
  EXPECT_EQ(findings.front().line, 1);
}

TEST(VoidStatusTest, AcceptsJustificationWithinThreeLines) {
  EXPECT_FALSE(HasRule(LintContent("src/a.cc",
                                   "// status intentionally ignored: destructor.\n"
                                   "(void)Close();\n"),
                       "void-status"));
  // A two-line comment plus a preceding discard still keeps the phrase in
  // the three-line window.
  EXPECT_FALSE(HasRule(LintContent("src/a.cc",
                                   "// status intentionally ignored: this test\n"
                                   "// asserts on counters only.\n"
                                   "(void)store->Get(key, &v);\n"
                                   "(void)store->Delete(key);\n"),
                       "void-status"));
}

TEST(VoidStatusTest, IgnoresVariableSilencing) {
  EXPECT_FALSE(HasRule(LintContent("src/a.cc", "(void)unused_variable;\n"), "void-status"));
}

// ------------------------------------------------------------- rename-sync

TEST(RenameSyncTest, FlagsRenameWithoutDirectorySync) {
  auto findings =
      LintContent("src/a.cc", "Status Save() {\n  return RenameFile(tmp, path);\n}\n");
  ASSERT_TRUE(HasRule(findings, "rename-sync"));
  EXPECT_EQ(findings.front().line, 2);
}

TEST(RenameSyncTest, AcceptsRenameFollowedBySyncDir) {
  EXPECT_FALSE(HasRule(LintContent("src/a.cc",
                                   "Status Save() {\n"
                                   "  GADGET_RETURN_IF_ERROR(RenameFile(tmp, path));\n"
                                   "  // several lines of explanation may sit\n"
                                   "  // between the rename and the sync\n"
                                   "  return SyncDir(dir);\n"
                                   "}\n"),
                       "rename-sync"));
}

TEST(RenameSyncTest, IgnoresDeclarationAndDefinition) {
  EXPECT_FALSE(HasRule(LintContent("src/file_util.h",
                                   "#ifndef GADGET_FILE_UTIL_H_\n#define GADGET_FILE_UTIL_H_\n"
                                   "Status RenameFile(const std::string& f, const std::string& t);\n"
                                   "#endif\n"),
                       "rename-sync"));
  EXPECT_FALSE(HasRule(LintContent("src/file_util.cc",
                                   "Status RenameFile(const std::string& f, const std::string& t) {\n"
                                   "  return DoRename(f, t);\n"
                                   "}\n"),
                       "rename-sync"));
}

// -------------------------------------------------------- bufferpool-bypass

TEST(BufferPoolBypassTest, FlagsBlockCacheAndRawPread) {
  EXPECT_TRUE(
      HasRule(LintContent("src/stores/lsm/a.cc", "BlockCache cache(1 << 20);\n"),
              "bufferpool-bypass"));
  auto findings = LintContent("src/stores/lsm/a.cc",
                              "ssize_t r = ::pread(fd, buf, n, off);\n");
  ASSERT_TRUE(HasRule(findings, "bufferpool-bypass"));
  EXPECT_EQ(findings.front().line, 1);
  EXPECT_TRUE(HasRule(LintContent("src/x.cc", "if (pread(fd, p, n, o) < 0) {}\n"),
                      "bufferpool-bypass"));
  EXPECT_TRUE(HasRule(LintContent("src/x.cc", "pread64(fd, p, n, o);\n"),
                      "bufferpool-bypass"));
}

TEST(BufferPoolBypassTest, ExemptsPoolImplementationAndLookalikes) {
  EXPECT_FALSE(HasRule(LintContent("src/stores/bufferpool/io_backend.cc",
                                   "::pread(fd, buf, n, off);\nBlockCache x;\n"),
                       "bufferpool-bypass"));
  EXPECT_FALSE(HasRule(LintContent("src/a.cc", "PreadAll(fd, buf, n, off);\n"),
                       "bufferpool-bypass"));
  EXPECT_FALSE(HasRule(LintContent("src/a.cc", "// pread() is banned here\n"),
                       "bufferpool-bypass"));
  EXPECT_FALSE(
      HasRule(LintContent("src/a.cc", "int my_pread(int fd);\n"), "bufferpool-bypass"));
}

// --------------------------------------------------------------- raw-socket

TEST(RawSocketTest, FlagsSyscallsOutsideNetDir) {
  auto findings =
      LintContent("src/server/server.cc", "int fd = socket(AF_INET, SOCK_STREAM, 0);\n");
  ASSERT_TRUE(HasRule(findings, "raw-socket"));
  EXPECT_EQ(findings.front().line, 1);
  EXPECT_TRUE(HasRule(LintContent("src/a.cc", "send(fd, buf, n, 0);\n"), "raw-socket"));
  EXPECT_TRUE(HasRule(LintContent("src/a.cc", "ssize_t r = ::recv(fd, p, n, 0);\n"),
                      "raw-socket"));
  EXPECT_TRUE(HasRule(LintContent("src/a.cc", "sendmsg(fd, &msg, 0);\n"), "raw-socket"));
  EXPECT_TRUE(
      HasRule(LintContent("src/a.cc", "recvfrom(fd, p, n, 0, a, l);\n"), "raw-socket"));
  EXPECT_TRUE(HasRule(LintContent("src/a.cc", "writev(fd, iov, cnt);\n"), "raw-socket"));
  EXPECT_TRUE(HasRule(LintContent("src/a.cc", "ssize_t r = ::writev(fd, iov, 2);\n"),
                      "raw-socket"));
}

TEST(RawSocketTest, FlagsUringSocketOpcodesOutsideNetDir) {
  EXPECT_TRUE(HasRule(LintContent("src/a.cc", "sqe->opcode = IORING_OP_RECV;\n"),
                      "raw-socket"));
  EXPECT_TRUE(HasRule(LintContent("src/a.cc", "sqe->opcode = IORING_OP_SENDMSG;\n"),
                      "raw-socket"));
  EXPECT_TRUE(HasRule(LintContent("src/a.cc", "sqe->opcode = IORING_OP_SEND;\n"),
                      "raw-socket"));
  EXPECT_TRUE(HasRule(LintContent("src/a.cc", "op = IORING_OP_RECVMSG;\n"), "raw-socket"));
  EXPECT_TRUE(HasRule(LintContent("src/a.cc", "op = IORING_OP_WRITEV;\n"), "raw-socket"));
  // The ring itself is sanctioned in the net dir.
  EXPECT_FALSE(HasRule(LintContent("src/server/net/uring_socket.cc",
                                   "sqe->opcode = IORING_OP_RECV;\n"),
                       "raw-socket"));
  // File-I/O opcodes stay legal: the buffer pool's IoBackend uses them.
  EXPECT_FALSE(HasRule(LintContent("src/stores/bufferpool/io_backend.cc",
                                   "sqe->opcode = IORING_OP_READ;\n"),
                       "raw-socket"));
  EXPECT_FALSE(HasRule(LintContent("src/a.cc", "op = IORING_OP_WRITE;\n"), "raw-socket"));
}

TEST(RawSocketTest, ExemptsNetDirHelpersAndLookalikes) {
  EXPECT_FALSE(HasRule(LintContent("src/server/net/socket.cc",
                                   "int fd = socket(AF_INET, SOCK_STREAM, 0);\n"
                                   "send(fd, buf, n, 0);\nrecv(fd, p, n, 0);\n"),
                       "raw-socket"));
  // Method calls and project helpers must not fire.
  EXPECT_FALSE(HasRule(LintContent("src/a.cc", "conn->Send(frame);\n"), "raw-socket"));
  EXPECT_FALSE(HasRule(LintContent("src/a.cc", "lease.conn()->Send(frame);\n"), "raw-socket"));
  EXPECT_FALSE(HasRule(LintContent("src/a.cc", "net::SendAll(fd, data);\n"), "raw-socket"));
  EXPECT_FALSE(HasRule(LintContent("src/a.cc", "RecvChunk(fd, &buf, n, &err);\n"),
                       "raw-socket"));
  EXPECT_FALSE(HasRule(LintContent("src/a.cc", "my_send(fd); resend(x); wire::recv_ops++;\n"),
                       "raw-socket"));
  EXPECT_FALSE(HasRule(LintContent("src/a.cc", "net::WritevNonBlocking(fd, iov, n, &e);\n"),
                       "raw-socket"));
  EXPECT_FALSE(HasRule(LintContent("src/a.cc", "stats.frames_per_writev_max = 4;\n"),
                       "raw-socket"));
  EXPECT_FALSE(HasRule(LintContent("src/a.cc", "// send() is banned here\n"), "raw-socket"));
}

// --------------------------------------------------------------- allowlist

TEST(AllowlistTest, SuppressesByRuleAndPathSuffix) {
  Allowlist list = Allowlist::Parse(
      "# comment\n"
      "\n"
      "banned-call src/legacy.cc\n"
      "void-status *\n");
  EXPECT_TRUE(list.Allows("third_party/src/legacy.cc", "banned-call"));
  EXPECT_FALSE(list.Allows("src/other.cc", "banned-call"));
  EXPECT_FALSE(list.Allows("src/legacy.cc", "include-guard"));
  EXPECT_TRUE(list.Allows("anything/at/all.h", "void-status"));
}

// ------------------------------------------------------ RunLint exit codes

TEST(RunLintTest, ExitCodesMatchCliContract) {
  const std::string dir = ::testing::TempDir() + "/lint_exit";
  std::filesystem::remove_all(dir);  // leftovers from a previous run
  std::filesystem::create_directories(dir);
  std::ostringstream out, err;
  // No source files -> usage error (2).
  EXPECT_EQ(RunLint({dir}, "", out, err), 2);
  // A clean file -> 0.
  {
    std::ofstream f(dir + "/clean.cc");
    f << "int main() { return 0; }\n";
  }
  EXPECT_EQ(RunLint({dir}, "", out, err), 0);
  // A dirty file -> 1, and the finding is printed file:line: rule-id: ...
  {
    std::ofstream f(dir + "/dirty.cc");
    f << "int x = rand();\n";
  }
  out.str("");
  EXPECT_EQ(RunLint({dir}, "", out, err), 1);
  EXPECT_NE(out.str().find("dirty.cc:1: banned-call:"), std::string::npos) << out.str();
  // The allowlist turns the same scan clean again -> 0.
  const std::string allow = dir + "/allow.txt";
  {
    std::ofstream f(allow);
    f << "banned-call dirty.cc\n";
  }
  EXPECT_EQ(RunLint({dir}, allow, out, err), 0);
  // A missing allowlist file is a usage error (2).
  EXPECT_EQ(RunLint({dir}, dir + "/nope.txt", out, err), 2);
}

// ---------------------------------------------------------------- meta-test

// The real tree must be lint-clean under the checked-in allowlist: this is
// the same scan the static-analysis CI job runs.
TEST(MetaTest, RealSourceTreeIsClean) {
  const std::string root = GADGET_SOURCE_DIR;
  std::ostringstream out, err;
  int rc = RunLint({root + "/src", root + "/tools", root + "/tests"},
                   root + "/tools/lint_allowlist.txt", out, err);
  EXPECT_EQ(rc, 0) << "gadget_lint findings:\n" << out.str() << err.str();
}

}  // namespace
}  // namespace lint
}  // namespace gadget
