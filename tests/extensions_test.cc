// Tests for the extension surfaces: ECDF files, event-trace-file sources,
// the dump_events harness mode, and concurrent multi-instance replay.
#include <gtest/gtest.h>

#include <sstream>

#include "src/common/file_util.h"
#include "src/distgen/ecdf_file.h"
#include "src/gadget/event_generator.h"
#include "src/gadget/harness.h"
#include "src/gadget/multi.h"
#include "src/gadget/workload.h"
#include "src/streams/trace_io.h"

namespace gadget {
namespace {

// ---------------------------------------------------------------- ECDF files

TEST(EcdfFileTest, ParsesCommentsAndBlankLines) {
  auto points = ParseEcdfText(
      "# taxi trip distances\n"
      "0 0.0\n"
      "\n"
      "10 0.5   # median\n"
      "100 1.0\n");
  ASSERT_TRUE(points.ok());
  ASSERT_EQ(points->size(), 3u);
  EXPECT_DOUBLE_EQ((*points)[1].value, 10);
  EXPECT_DOUBLE_EQ((*points)[1].cum_prob, 0.5);
}

TEST(EcdfFileTest, RejectsMalformedLines) {
  EXPECT_FALSE(ParseEcdfText("5\n").ok());          // missing prob
  EXPECT_FALSE(ParseEcdfText("5 1.5\n").ok());      // prob > 1
}

TEST(EcdfFileTest, LoadsAndSamples) {
  ScopedTempDir dir;
  const std::string path = dir.path() + "/keys.ecdf";
  ASSERT_TRUE(WriteStringToFile(path, "0 0.0\n9 0.9\n99 1.0\n").ok());
  auto dist = LoadEcdfFile(path, 3);
  ASSERT_TRUE(dist.ok()) << dist.status().ToString();
  int low = 0;
  for (int i = 0; i < 10000; ++i) {
    uint64_t v = (*dist)->Next();
    ASSERT_LE(v, 99u);
    if (v <= 9) {
      ++low;
    }
  }
  EXPECT_NEAR(low / 10000.0, 0.9, 0.02);
}

TEST(EcdfFileTest, EventGeneratorAcceptsEcdfKeys) {
  ScopedTempDir dir;
  const std::string path = dir.path() + "/keys.ecdf";
  ASSERT_TRUE(WriteStringToFile(path, "0 0.0\n49 1.0\n").ok());
  EventGeneratorOptions gen;
  gen.num_events = 2000;
  gen.key_distribution = "ecdf:" + path;
  auto source = MakeEventGenerator(gen);
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  Event e;
  while ((*source)->Next(&e)) {
    if (!e.is_watermark()) {
      ASSERT_LE(e.key, 49u);
    }
  }
}

TEST(EcdfFileTest, MissingFileErrors) {
  EventGeneratorOptions gen;
  gen.key_distribution = "ecdf:/no/such/file";
  EXPECT_FALSE(MakeEventGenerator(gen).ok());
}

// -------------------------------------------------------- trace-file source

TEST(TraceFileSourceTest, RoundTripsThroughWorkload) {
  ScopedTempDir dir;
  const std::string events_path = dir.path() + "/events.gtrace";
  // Dump a synthetic stream to a file...
  {
    EventGeneratorOptions gen;
    gen.num_events = 3000;
    gen.seed = 9;
    auto source = MakeEventGenerator(gen);
    ASSERT_TRUE(source.ok());
    auto writer = EventTraceWriter::Create(events_path);
    ASSERT_TRUE(writer.ok());
    Event e;
    while ((*source)->Next(&e)) {
      ASSERT_TRUE((*writer)->Append(e).ok());
    }
    ASSERT_TRUE((*writer)->Finish().ok());
  }
  // ...then the trace-file source must generate the identical workload as a
  // fresh generator with the same seed.
  auto from_file = MakeTraceFileSource(events_path, /*watermark_every=*/0);
  ASSERT_TRUE(from_file.ok());
  auto w1 = GenerateWorkload("tumbling_incr", **from_file, OperatorConfig{});
  ASSERT_TRUE(w1.ok());

  EventGeneratorOptions gen;
  gen.num_events = 3000;
  gen.seed = 9;
  auto source = MakeEventGenerator(gen);
  ASSERT_TRUE(source.ok());
  auto w2 = GenerateWorkload("tumbling_incr", **source, OperatorConfig{});
  ASSERT_TRUE(w2.ok());

  ASSERT_EQ(w1->trace.size(), w2->trace.size());
  for (size_t i = 0; i < w1->trace.size(); ++i) {
    ASSERT_EQ(w1->trace[i].key, w2->trace[i].key) << i;
    ASSERT_EQ(w1->trace[i].op, w2->trace[i].op) << i;
  }
}

TEST(TraceFileSourceTest, InjectsExtraWatermarks) {
  ScopedTempDir dir;
  const std::string path = dir.path() + "/e.gtrace";
  {
    auto writer = EventTraceWriter::Create(path);
    ASSERT_TRUE(writer.ok());
    for (int i = 0; i < 100; ++i) {
      Event e;
      e.event_time_ms = static_cast<uint64_t>(i * 10);
      e.key = static_cast<uint64_t>(i);
      ASSERT_TRUE((*writer)->Append(e).ok());
    }
    ASSERT_TRUE((*writer)->Finish().ok());
  }
  auto source = MakeTraceFileSource(path, /*watermark_every=*/25);
  ASSERT_TRUE(source.ok());
  int watermarks = 0;
  Event e;
  while ((*source)->Next(&e)) {
    if (e.is_watermark()) {
      ++watermarks;
    }
  }
  EXPECT_EQ(watermarks, 4);
}

// -------------------------------------------------------- dump_events mode

TEST(DumpEventsTest, HarnessDumpsAndReplaysEvents) {
  ScopedTempDir dir;
  const std::string events_path = dir.path() + "/dumped.gtrace";
  std::ostringstream out1;
  auto config = Config::ParseString("mode = dump_events\nevents = 2000\nseed = 4\n");
  ASSERT_TRUE(config.ok());
  config->Set("events_out", events_path);
  ASSERT_TRUE(RunHarness(*config, out1).ok());
  ASSERT_TRUE(FileExists(events_path));

  std::ostringstream out2;
  auto replay_config = Config::ParseString("mode = online\nstore = mem\n");
  ASSERT_TRUE(replay_config.ok());
  replay_config->Set("source", "trace:" + events_path);
  Status s = RunHarness(*replay_config, out2);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_NE(out2.str().find("2000 events"), std::string::npos);
}

// -------------------------------------------------- multi-instance replay

TEST(MultiReplayTest, InstancesRunAndCombine) {
  auto make = [](uint64_t seed) {
    EventGeneratorOptions gen;
    gen.num_events = 3000;
    gen.seed = seed;
    auto source = MakeEventGenerator(gen);
    EXPECT_TRUE(source.ok());
    auto w = GenerateWorkload("sliding_incr", **source, OperatorConfig{});
    EXPECT_TRUE(w.ok());
    return std::move(w->trace);
  };
  std::vector<std::vector<StateAccess>> traces;
  traces.push_back(make(1));
  traces.push_back(make(2));
  traces.push_back(make(3));

  ScopedTempDir dir;
  auto store = OpenStore({.engine = "lsm", .dir = dir.path() + "/db"});
  ASSERT_TRUE(store.ok());
  auto result = ReplayConcurrently(traces, store->get());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->per_instance.size(), 3u);
  uint64_t total_ops = 0;
  for (const ReplayResult& r : result->per_instance) {
    EXPECT_GT(r.ops, 0u);
    total_ops += r.ops;
  }
  EXPECT_EQ(total_ops, traces[0].size() + traces[1].size() + traces[2].size());
  EXPECT_GT(result->combined_throughput_ops_per_sec, 0);
  ASSERT_TRUE((*store)->Close().ok());
}

TEST(MultiReplayTest, NamespaceStrideIsolatesWriters) {
  // Identical traces; with namespace separation the final states must not
  // interfere — every instance's keys exist independently.
  std::vector<StateAccess> trace;
  for (uint64_t i = 0; i < 100; ++i) {
    trace.push_back(StateAccess{OpType::kPut, StateKey{i, 0}, 8, i});
  }
  std::vector<std::vector<StateAccess>> traces = {trace, trace};
  ScopedTempDir dir;
  auto store = OpenStore({.engine = "btree", .dir = dir.path() + "/db"});
  ASSERT_TRUE(store.ok());
  auto result = ReplayConcurrently(traces, store->get(), {}, /*stride=*/1'000'000);
  ASSERT_TRUE(result.ok());
  std::string value;
  EXPECT_TRUE((*store)->Get(EncodeStateKey(StateKey{5, 0}), &value).ok());
  EXPECT_TRUE((*store)->Get(EncodeStateKey(StateKey{1'000'005, 0}), &value).ok());
  ASSERT_TRUE((*store)->Close().ok());
}

TEST(MultiReplayTest, EmptyInput) {
  auto result = ReplayConcurrently({}, nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->per_instance.empty());
}

}  // namespace
}  // namespace gadget
