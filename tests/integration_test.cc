// End-to-end integration tests: full pipeline (event generation -> driver ->
// replay -> storage engine) for every workload x engine combination, store
// counter consistency, cross-engine final-state equivalence, and offline
// trace round-trips through real stores.
#include <gtest/gtest.h>

#include <map>
#include <thread>

#include "src/analysis/metrics.h"
#include "src/common/file_util.h"
#include "src/flinklet/runtime.h"
#include "src/gadget/evaluator.h"
#include "src/gadget/event_generator.h"
#include "src/gadget/workload.h"
#include "src/streams/trace_io.h"

namespace gadget {
namespace {

StatusOr<std::vector<StateAccess>> MakeWorkload(const std::string& op, uint64_t events) {
  EventGeneratorOptions gen;
  gen.num_events = events;
  gen.num_keys = 200;
  gen.key_distribution = "zipfian";
  gen.rate_per_sec = 1'000;
  gen.value_size = 64;
  gen.num_streams = op.rfind("join", 0) == 0 ? 2 : 1;
  gen.seed = 7;
  auto source = MakeEventGenerator(gen);
  if (!source.ok()) {
    return source.status();
  }
  OperatorConfig cfg;
  auto result = GenerateWorkload(op, **source, cfg);
  if (!result.ok()) {
    return result.status();
  }
  return std::move(result->trace);
}

class WorkloadEngineTest
    : public ::testing::TestWithParam<std::tuple<std::string, const char*>> {};

TEST_P(WorkloadEngineTest, FullPipelineReplays) {
  const auto& [op, engine] = GetParam();
  auto trace = MakeWorkload(op, 5'000);
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  ASSERT_GT(trace->size(), 1'000u);

  ScopedTempDir dir;
  StoreOptions sopts;
  sopts.engine = engine;
  sopts.dir = dir.path() + "/db";
  auto store = OpenStore(sopts);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  auto result = ReplayTrace(*trace, store->get());
  ASSERT_TRUE(result.ok()) << op << "/" << engine << ": " << result.status().ToString();
  EXPECT_EQ(result->ops, trace->size());

  // The store's op counters must account for every replayed request (merges
  // become RMWs on engines without native merge).
  StoreStats stats = (*store)->stats();
  OpComposition c = ComputeComposition(*trace);
  uint64_t expected_ops = c.total;
  uint64_t counted = stats.gets + stats.puts + stats.merges + stats.deletes + stats.rmws;
  // RMW via default Get+Put costs extra gets/puts on some engines; the
  // counter total must be at least the request count.
  EXPECT_GE(counted, expected_ops) << op << "/" << engine;
  ASSERT_TRUE((*store)->Close().ok());
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, WorkloadEngineTest,
    ::testing::Combine(::testing::ValuesIn(AllOperatorNames()),
                       ::testing::Values("lsm", "lethe", "faster", "btree")),
    [](const auto& spec) {
      return std::get<0>(spec.param) + "_" + std::get<1>(spec.param);
    });

// After replaying the same trace, all engines must agree on the surviving
// state (probed via the trace's distinct keys).
TEST(CrossEngineTest, FinalStateAgreesAcrossEngines) {
  auto trace = MakeWorkload("session_incr", 8'000);
  ASSERT_TRUE(trace.ok());

  std::map<std::string, std::map<StateKey, std::string>> final_states;
  for (const char* engine : {"mem", "lsm", "lethe", "faster", "btree"}) {
    ScopedTempDir dir;
    auto store = OpenStore({.engine = engine, .dir = dir.path() + "/db"});
    ASSERT_TRUE(store.ok());
    auto replay = ReplayTrace(*trace, store->get());
    ASSERT_TRUE(replay.ok()) << engine;
    std::map<StateKey, std::string>& state = final_states[engine];
    std::map<StateKey, bool> seen;
    for (const StateAccess& a : *trace) {
      seen[a.key] = true;
    }
    for (const auto& [key, unused] : seen) {
      std::string value;
      Status s = (*store)->Get(EncodeStateKey(key), &value);
      if (s.ok()) {
        state[key] = value;
      } else {
        ASSERT_TRUE(s.IsNotFound()) << engine << ": " << s.ToString();
      }
    }
    ASSERT_TRUE((*store)->Close().ok());
  }
  const auto& reference = final_states["mem"];
  for (const char* engine : {"lsm", "lethe", "faster", "btree"}) {
    EXPECT_EQ(final_states[engine].size(), reference.size()) << engine;
    EXPECT_EQ(final_states[engine], reference) << engine;
  }
}

// Offline trace file -> replay on a real store round trip.
TEST(OfflineIntegrationTest, TraceFileDrivesRealStore) {
  ScopedTempDir dir;
  const std::string path = dir.path() + "/w.trace";
  EventGeneratorOptions gen;
  gen.num_events = 3'000;
  gen.seed = 3;
  auto source = MakeEventGenerator(gen);
  ASSERT_TRUE(source.ok());
  ASSERT_TRUE(GenerateWorkloadToFile("sliding_hol", **source, OperatorConfig{}, path).ok());

  auto trace = ReadAccessTrace(path);
  ASSERT_TRUE(trace.ok());
  auto store = OpenStore({.engine = "lsm", .dir = dir.path() + "/db"});
  ASSERT_TRUE(store.ok());
  auto result = ReplayTrace(*trace, store->get());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ops, trace->size());
  ASSERT_TRUE((*store)->Close().ok());
}

// Concurrent Gadget instances against one shared store (the Fig. 14 setup)
// must replay cleanly with disjoint key spaces.
TEST(ConcurrentIntegrationTest, TwoWorkloadsOneStore) {
  auto a = MakeWorkload("sliding_incr", 4'000);
  auto b = MakeWorkload("sliding_hol", 4'000);
  ASSERT_TRUE(a.ok() && b.ok());
  for (StateAccess& access : *b) {
    access.key.hi += 1'000'000;  // disjoint writer key ranges (§2.3)
  }
  ScopedTempDir dir;
  auto store = OpenStore({.engine = "lsm", .dir = dir.path() + "/db"});
  ASSERT_TRUE(store.ok());
  StatusOr<ReplayResult> rb = Status::Internal("not run");
  std::thread t([&] { rb = ReplayTrace(*b, store->get()); });
  auto ra = ReplayTrace(*a, store->get());
  t.join();
  ASSERT_TRUE(ra.ok()) << ra.status().ToString();
  ASSERT_TRUE(rb.ok()) << rb.status().ToString();
  EXPECT_EQ(ra->ops + rb->ops, a->size() + b->size());
  ASSERT_TRUE((*store)->Close().ok());
}

// Flinklet against a real store produces the same outputs as against the
// in-memory shadow backend (the store is semantically transparent).
TEST(FlinkletStoreIntegrationTest, OutputsMatchShadowBackend) {
  auto d1 = MakeDataset("borg", 3'000, 5);
  auto d2 = MakeDataset("borg", 3'000, 5);
  ASSERT_TRUE(d1.ok() && d2.ok());
  PipelineOptions popts;

  auto shadow = RunPipeline("tumbling_incr", **d1, popts, nullptr);
  ASSERT_TRUE(shadow.ok());

  ScopedTempDir dir;
  auto store = OpenStore({.engine = "lsm", .dir = dir.path() + "/db"});
  ASSERT_TRUE(store.ok());
  auto real = RunPipeline("tumbling_incr", **d2, popts, store->get());
  ASSERT_TRUE(real.ok()) << real.status().ToString();

  ASSERT_EQ(real->outputs.size(), shadow->outputs.size());
  for (size_t i = 0; i < real->outputs.size(); ++i) {
    EXPECT_EQ(real->outputs[i].key, shadow->outputs[i].key);
    EXPECT_EQ(real->outputs[i].time, shadow->outputs[i].time);
    EXPECT_EQ(real->outputs[i].count, shadow->outputs[i].count);
  }
  ASSERT_TRUE((*store)->Close().ok());
}

}  // namespace
}  // namespace gadget
